package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/obs"
	"relest/internal/relation"
	"relest/internal/sampling"
)

// registry is the daemon's mutable state: registered base relations and
// named synopses. A coarse RWMutex guards the maps; per-synopsis locks
// serialize stream updates and snapshotting so estimation never observes
// a half-applied event.
//
// The registry also owns the synopsis lifecycle: every entry retains the
// request spec it was built from, so a static synopsis evicted under the
// relest_synopsis_bytes budget can be rebuilt deterministically (same
// seed, same sorted-name draw order, same append-only base relations →
// byte-identical samples) the next time an estimate references it.
type registry struct {
	mu   sync.RWMutex
	cat  algebra.MapCatalog
	syns map[string]*synopsisEntry

	// clock is the logical LRU clock: every synopsis reference ticks it
	// and stamps the entry, so eviction order is deterministic per
	// reference sequence and never reads the wall clock.
	clock atomic.Int64

	// budget caps the summed Bytes() of resident static synopses; 0 is
	// unlimited. Incremental entries are pinned: they carry live stream
	// state that only the WAL can reconstruct, and their reservoirs
	// contribute nothing to the resident-bytes gauge anyway.
	budget int64
	// tenantBudget caps each tenant's resident static synopsis bytes;
	// 0 is unlimited.
	tenantBudget int64

	// admitMu serializes synopsis admission: the duplicate check, the
	// tenant quota check, the WAL creation record, and the publish into
	// syns happen under it as one unit, so two concurrent creates can
	// never both pass the same quota reading, and the WAL's creation
	// order always equals the publish order. It is the outermost lock on
	// the create path and is never taken while mu or an entry lock is
	// held.
	admitMu sync.Mutex

	// wal, when non-nil, receives every applied stream event (under the
	// entry lock, so log order equals application order per synopsis).
	wal *streamLog
	// replaying suppresses WAL appends while the WAL itself is being
	// replayed into freshly restored synopses.
	replaying bool

	rec obs.Recorder
}

// synopsisEntry is one named synopsis. Exactly one of static/inc is set
// while resident; an evicted static entry has static == nil until the
// next reference rebuilds it from spec.
type synopsisEntry struct {
	mu     sync.Mutex
	kind   string
	tenant string
	// spec is the creation request, retained for deterministic rebuild
	// after eviction and for snapshot manifests.
	spec SynopsisRequest
	// static is a drawn synopsis shared by plain estimates (read-only
	// concurrent access) and cloned per sequential/deadline request so
	// sample extensions stay private.
	static *estimator.Synopsis
	// inc is an incrementally-maintained synopsis; estimates run over
	// Snapshot() taken under mu.
	inc *estimator.Incremental
	// evicted marks a static entry whose sample was dropped under the
	// byte budget (guarded by mu).
	evicted bool
	// lastUse is the registry clock tick of the most recent reference.
	lastUse atomic.Int64
}

func newRegistry(rec obs.Recorder) *registry {
	return &registry{cat: algebra.MapCatalog{}, syns: map[string]*synopsisEntry{}, rec: obs.Or(rec)}
}

// touch stamps the entry with a fresh logical-clock tick.
func (reg *registry) touch(e *synopsisEntry) {
	e.lastUse.Store(reg.clock.Add(1))
}

// validName reports whether a client-supplied relation or synopsis name
// is safe to use as a registry key and, under -snapshot-dir, as a file
// name inside the snapshot directory: letters, digits, underscore and
// hyphen only. The charset has no path separators and cannot spell
// "..", so a name can never escape the directory it is joined into.
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// errBadName is the rejection message for names outside validName's
// charset, shared by the upload and create handlers.
func errBadName(kind, name string) error {
	return fmt.Errorf("invalid %s name %q: want 1-128 characters from [A-Za-z0-9_-]", kind, name)
}

// addRelation registers r under its name; duplicate or invalid names are
// an error.
func (reg *registry) addRelation(r *relation.Relation) error {
	if !validName(r.Name()) {
		return errBadName("relation", r.Name())
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, dup := reg.cat[r.Name()]; dup {
		return fmt.Errorf("relation %q already registered", r.Name())
	}
	reg.cat[r.Name()] = r
	return nil
}

// removeRelation drops the named relation from the catalog. A relation
// any synopsis spec references is refused with 409: evicted-synopsis
// rebuilds and incremental stream events re-read the base relation, so
// removing it would strand them. Like uploads, removals are
// snapshot-durable rather than WAL-logged — a drop after the last
// snapshot reappears on restore, exactly as an upload after the last
// snapshot is lost. The sharded coordinator leans on this endpoint to
// roll half-registered relations back after a failed fanout.
func (reg *registry) removeRelation(name string) (int, error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.cat[name]; !ok {
		return 404, fmt.Errorf("no relation %q", name)
	}
	for sname, e := range reg.syns {
		if _, uses := e.spec.Relations[name]; uses {
			return 409, fmt.Errorf("relation %q is referenced by synopsis %q", name, sname)
		}
	}
	delete(reg.cat, name)
	return 0, nil
}

// removeSynopsis drops the named synopsis. When persistence is on, the
// drop is WAL-logged before the entry is unpublished (under admitMu,
// like creations), so the log's create/drop order always equals the
// registry's publish order and a restore replays to the same state.
func (reg *registry) removeSynopsis(name string) (int, error) {
	reg.admitMu.Lock()
	defer reg.admitMu.Unlock()
	reg.mu.RLock()
	_, ok := reg.syns[name]
	reg.mu.RUnlock()
	if !ok {
		return 404, fmt.Errorf("no synopsis %q", name)
	}
	if reg.wal != nil && !reg.replaying {
		if err := reg.wal.append(walEvent{Synopsis: name, Op: "drop"}); err != nil {
			return 500, fmt.Errorf("synopsis %q: appending drop to stream log: %v", name, err)
		}
	}
	reg.mu.Lock()
	delete(reg.syns, name)
	reg.mu.Unlock()
	reg.rec.Set(mSynopsisBytes, float64(reg.synopsisBytes()))
	return 0, nil
}

// relationBytes sums the resident column storage of registered relations.
func (reg *registry) relationBytes() int {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	total := 0
	for _, r := range reg.cat {
		total += r.Bytes()
	}
	return total
}

// entryBytes reports the entry's resident sample bytes (0 when evicted or
// incremental — incremental reservoirs materialize only at estimate time).
func (e *synopsisEntry) entryBytes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.static == nil {
		return 0
	}
	return e.static.Bytes()
}

// synopsisBytes sums the resident sample storage of registered synopses.
// Static synopses hold zero-copy sample views (index vectors); incremental
// ones report their reservoir snapshots only when estimated, so they
// contribute nothing here.
func (reg *registry) synopsisBytes() int {
	total := 0
	for _, e := range reg.entries() {
		total += e.entryBytes()
	}
	return total
}

// entries snapshots the entry pointers under the registry lock.
func (reg *registry) entries() []*synopsisEntry {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]*synopsisEntry, 0, len(reg.syns))
	for _, e := range reg.syns {
		out = append(out, e)
	}
	return out
}

// tenantSynopsisBytes sums the resident static synopsis bytes owned by a
// tenant.
func (reg *registry) tenantSynopsisBytes(tenant string) int {
	total := 0
	for _, e := range reg.entries() {
		if e.tenant == tenant {
			total += e.entryBytes()
		}
	}
	return total
}

// relations lists registered relations in sorted-name order.
func (reg *registry) relations() []RelationInfo {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]RelationInfo, 0, len(reg.cat))
	for _, r := range reg.cat {
		out = append(out, RelationInfo{Name: r.Name(), Rows: r.Len(), Schema: r.Schema().String()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// quotaError marks a rejection caused by a tenant quota; the handlers map
// it to its HTTP status instead of a generic 400.
type quotaError struct {
	status int
	msg    string
}

func (e *quotaError) Error() string { return e.msg }

// buildStatic draws the static synopsis a spec describes. Draws iterate
// the spec's relations in sorted-name order so the seed pins the synopsis
// exactly; called with reg.mu held (create) or over the immutable catalog
// (rebuild — relations are append-only and never replaced, so reading the
// map under RLock suffices).
func (reg *registry) buildStatic(name string, req SynopsisRequest, cat map[string]*relation.Relation) (*estimator.Synopsis, error) {
	names := make([]string, 0, len(req.Relations))
	for rel := range req.Relations {
		names = append(names, rel)
	}
	sort.Strings(names)
	rng := sampling.NewSource(req.Seed).Rand(0)
	syn := estimator.NewSynopsis()
	for _, rel := range names {
		r, ok := cat[rel]
		if !ok {
			return nil, fmt.Errorf("synopsis %q: relation %q not registered", name, rel)
		}
		n := req.Relations[rel]
		if n < 1 {
			return nil, fmt.Errorf("synopsis %q: sample size %d for %q (want ≥ 1)", name, n, rel)
		}
		if n > r.Len() {
			n = r.Len()
		}
		if err := syn.AddDrawn(r, n, rng); err != nil {
			return nil, fmt.Errorf("synopsis %q: %v", name, err)
		}
	}
	return syn, nil
}

// addSynopsis creates the named synopsis from the request spec for the
// given tenant, enforcing the tenant byte quota and then the global byte
// budget (evicting colder entries when needed). When persistence is on,
// the creation itself is WAL-logged before the entry is published, so a
// synopsis created after the last snapshot survives a crash: restore
// replays the creation record and then its stream events in order.
func (reg *registry) addSynopsis(name, tenant string, req SynopsisRequest) error {
	if !validName(name) {
		return errBadName("synopsis", name)
	}
	if len(req.Relations) == 0 {
		return fmt.Errorf("synopsis %q: no relations given", name)
	}
	reg.mu.Lock()
	if _, dup := reg.syns[name]; dup {
		reg.mu.Unlock()
		return fmt.Errorf("synopsis %q already exists", name)
	}
	entry := &synopsisEntry{kind: req.Kind, tenant: tenant, spec: req}
	var err error
	switch req.Kind {
	case "", "static":
		entry.kind = "static"
		entry.static, err = reg.buildStatic(name, req, reg.cat)
	case "incremental":
		capacity := req.Capacity
		if capacity <= 0 {
			capacity = 1000
		}
		inc := estimator.NewIncrementalWithOptions(estimator.IncrementalOptions{
			Capacity: capacity, Seed: req.Seed,
		})
		names := make([]string, 0, len(req.Relations))
		for rel := range req.Relations {
			names = append(names, rel)
		}
		sort.Strings(names)
		for _, rel := range names {
			r, ok := reg.cat[rel]
			if !ok {
				err = fmt.Errorf("synopsis %q: relation %q not registered", name, rel)
				break
			}
			if terr := inc.Track(rel, r.Schema()); terr != nil {
				err = fmt.Errorf("synopsis %q: %v", name, terr)
				break
			}
		}
		entry.inc = inc
	default:
		err = fmt.Errorf("synopsis %q: unknown kind %q (want static or incremental)", name, req.Kind)
	}
	if err != nil {
		reg.mu.Unlock()
		return err
	}
	reg.mu.Unlock()

	// Admission is serialized: every publish into syns goes through
	// admitMu, so the duplicate and quota checks below read a state no
	// concurrent create can invalidate before this entry is published.
	reg.admitMu.Lock()
	defer reg.admitMu.Unlock()

	reg.mu.RLock()
	_, dup := reg.syns[name]
	reg.mu.RUnlock()
	if dup {
		return fmt.Errorf("synopsis %q already exists", name)
	}

	// Tenant quota: a tenant may not hold more resident synopsis bytes
	// than its allowance. Checked against the entry's own cost before it
	// is published, so an over-quota create leaves no trace. Concurrent
	// evictions can only shrink the reading, which keeps the check
	// conservative-safe.
	if reg.tenantBudget > 0 && entry.static != nil {
		have := reg.tenantSynopsisBytes(tenant)
		if add := entry.static.Bytes(); int64(have+add) > reg.tenantBudget {
			reg.rec.Add(mQuotaRejected, 1)
			return &quotaError{
				status: 413,
				msg: fmt.Sprintf("tenant %q synopsis bytes %d + %d exceed the %d-byte quota",
					tenant, have, add, reg.tenantBudget),
			}
		}
	}

	// Log the creation before publishing: stream events for this synopsis
	// can only be accepted once it is visible in the map, so the WAL's
	// creation record always precedes every event that replays into it.
	// A failed append refuses the create — an acknowledged creation is
	// durable, like an acknowledged stream event.
	if reg.wal != nil && !reg.replaying {
		spec := req
		if err := reg.wal.append(walEvent{Synopsis: name, Op: "create", Tenant: tenant, Spec: &spec}); err != nil {
			return fmt.Errorf("synopsis %q: appending creation to stream log: %v", name, err)
		}
	}

	reg.mu.Lock()
	reg.syns[name] = entry
	reg.mu.Unlock()
	reg.touch(entry)
	reg.enforceBudget(entry)
	reg.rec.Set(mSynopsisBytes, float64(reg.synopsisBytes()))
	return nil
}

// enforceBudget evicts least-recently-used resident static synopses until
// the summed resident bytes fit the budget. The entry just referenced
// (keep) is never evicted — the budget is a pressure valve, not a ban on
// any single synopsis — and incremental entries are pinned. Eviction
// drops only the entry's sample storage; in-flight estimates holding the
// evicted *estimator.Synopsis keep it alive until they finish, so
// eviction never races an answer.
func (reg *registry) enforceBudget(keep *synopsisEntry) {
	if reg.budget <= 0 {
		return
	}
	for {
		entries := reg.entries()
		total := 0
		var victim *synopsisEntry
		for _, e := range entries {
			b := e.entryBytes()
			total += b
			if b == 0 || e == keep || e.inc != nil {
				continue
			}
			if victim == nil || e.lastUse.Load() < victim.lastUse.Load() {
				victim = e
			}
		}
		if int64(total) <= reg.budget || victim == nil {
			return
		}
		victim.mu.Lock()
		// Re-check under the lock: a concurrent rebuild may have touched
		// the entry since it was chosen; eviction of a just-rebuilt entry
		// is still correct (the next reference rebuilds again), so only
		// the already-evicted case is skipped.
		if victim.static != nil && !victim.evicted {
			victim.static = nil
			victim.evicted = true
			reg.rec.Add(mEvictions, 1)
		}
		victim.mu.Unlock()
	}
}

// synopsis returns the named entry.
func (reg *registry) synopsis(name string) (*synopsisEntry, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	e, ok := reg.syns[name]
	return e, ok
}

// synopsisNames lists synopsis names, sorted.
func (reg *registry) synopsisNames() []string {
	reg.mu.RLock()
	names := make([]string, 0, len(reg.syns))
	for name := range reg.syns {
		names = append(names, name)
	}
	reg.mu.RUnlock()
	sort.Strings(names)
	return names
}

// synopses lists synopsis infos in sorted-name order.
func (reg *registry) synopses() []SynopsisInfo {
	names := reg.synopsisNames()
	out := make([]SynopsisInfo, 0, len(names))
	for _, name := range names {
		e, ok := reg.synopsis(name)
		if !ok {
			continue
		}
		out = append(out, e.info(name))
	}
	return out
}

// info snapshots the entry's current per-relation sample sizes.
func (e *synopsisEntry) info(name string) SynopsisInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	sizes := map[string]int{}
	switch {
	case e.static != nil:
		for _, rel := range e.static.Names() {
			n, _ := e.static.SampleSize(rel)
			sizes[rel] = n
		}
	case e.inc != nil:
		for _, rel := range e.incNames() {
			n, _ := e.inc.SampleSize(rel)
			sizes[rel] = n
		}
	}
	return SynopsisInfo{Name: name, Kind: e.kind, Tenant: e.tenant, Relations: sizes, Evicted: e.evicted}
}

// incNames lists the incremental synopsis's tracked relations via a
// snapshot (Incremental does not expose its name set directly).
func (e *synopsisEntry) incNames() []string {
	syn, err := e.inc.Snapshot()
	if err != nil {
		return nil
	}
	return syn.Names()
}

// apply feeds one stream event to an incremental synopsis, appending it
// to the WAL (when persistence is on) inside the same critical section,
// so the log order matches the application order per synopsis and a
// replay reconstructs the identical reservoir state.
func (e *synopsisEntry) apply(reg *registry, name string, req StreamRequest) error {
	if e.inc == nil {
		return fmt.Errorf("synopsis is %s; stream updates need kind incremental", e.kind)
	}
	reg.mu.RLock()
	r, ok := reg.cat[req.Relation]
	reg.mu.RUnlock()
	if !ok {
		return fmt.Errorf("relation %q not registered", req.Relation)
	}
	schema := r.Schema()
	if len(req.Tuple) != schema.Len() {
		return fmt.Errorf("tuple arity %d != schema arity %d for %q", len(req.Tuple), schema.Len(), req.Relation)
	}
	tup := make(relation.Tuple, schema.Len())
	for i, s := range req.Tuple {
		if s == "" {
			tup[i] = relation.Null()
			continue
		}
		v, err := relation.ParseValue(s, schema.Column(i).Kind)
		if err != nil {
			return fmt.Errorf("tuple column %d: %v", i, err)
		}
		tup[i] = v
	}
	reg.touch(e)
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	switch req.Op {
	case "insert":
		err = e.inc.Insert(req.Relation, tup)
	case "delete":
		err = e.inc.Delete(req.Relation, tup)
	default:
		return fmt.Errorf("unknown op %q (want insert or delete)", req.Op)
	}
	if err != nil {
		return err
	}
	if reg.wal != nil && !reg.replaying {
		if werr := reg.wal.append(walEvent{Synopsis: name, Op: req.Op, Relation: req.Relation, Tuple: req.Tuple}); werr != nil {
			return fmt.Errorf("appending stream log: %v", werr)
		}
		reg.rec.Add(mWALEvents, 1)
	}
	return nil
}

// estimationSynopsis resolves the synopsis an estimate should run over,
// transparently rebuilding an evicted static entry from its spec first.
// Static plain estimates share the stored synopsis (estimation is
// read-only); sequential and deadline modes get a private clone because
// they extend samples in place. Incremental synopses are snapshotted
// under the entry lock and support plain mode only: a snapshot holds
// samples without base relations, so it cannot be extended.
func (reg *registry) estimationSynopsis(name string, e *synopsisEntry, mode string) (*estimator.Synopsis, error) {
	reg.touch(e)
	if e.inc != nil {
		if mode != "plain" {
			return nil, fmt.Errorf("mode %q needs a static synopsis (incremental snapshots cannot extend their samples)", mode)
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.inc.Snapshot()
	}
	e.mu.Lock()
	for e.evicted {
		// Transparent rebuild: the spec's seed and the append-only base
		// relations make the redraw byte-identical to the evicted sample,
		// so callers cannot tell an eviction ever happened (beyond the
		// metrics). The catalog map is read under RLock; relations are
		// never replaced once registered.
		reg.mu.RLock()
		syn, err := reg.buildStatic(name, e.spec, reg.cat)
		reg.mu.RUnlock()
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("rebuilding evicted synopsis: %v", err)
		}
		e.static = syn
		e.evicted = false
		reg.rec.Add(mRebuilds, 1)
		e.mu.Unlock()
		// Rebuilding may push the total back over budget: shed colder
		// entries, never the one just rebuilt.
		reg.enforceBudget(e)
		reg.rec.Set(mSynopsisBytes, float64(reg.synopsisBytes()))
		e.mu.Lock()
		// Loop rather than fall through: while the lock was released for
		// enforceBudget, a concurrent create's or rebuild's enforceBudget
		// (which exempts only its own entry) may have evicted this one
		// again, leaving e.static nil. Each iteration re-checks under the
		// lock, so the estimate below always reads a resident sample.
	}
	defer e.mu.Unlock()
	if mode == "plain" {
		return e.static, nil
	}
	return e.static.Clone(), nil
}
