package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"relest/internal/obs"
)

// Config configures the daemon.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0"; port 0 picks a
	// free port, reported by Addr after Start).
	Addr string
	// Concurrency is the number of estimation workers — the bound on
	// in-flight estimates (default GOMAXPROCS). Each estimate may itself
	// parallelize internally through the estimator's worker pool.
	Concurrency int
	// QueueDepth bounds the number of admitted-but-not-finished
	// estimation requests beyond the workers; requests arriving past the
	// bound are shed with 429 (default 64).
	QueueDepth int
	// RequestTimeout caps each estimation request's wall-clock time and
	// is the ceiling for per-request timeout_ms values (default 30s).
	RequestTimeout time.Duration
	// EstimatorWorkers is the per-estimate parallelism used when a
	// request does not set workers (0 = library default). Estimates are
	// bit-identical for every setting.
	EstimatorWorkers int
	// MaxUploadBytes caps CSV upload bodies. The import is streaming, so
	// an upload never buffers more than this many raw bytes regardless of
	// how large the resulting relation would be (default 64 MiB).
	MaxUploadBytes int64
	// SynopsisBytesBudget caps the summed resident bytes of static
	// synopses (the relest_synopsis_bytes gauge); past it, the
	// least-recently-used synopses are evicted and transparently rebuilt
	// from their creation specs on the next reference. 0 = unlimited.
	SynopsisBytesBudget int64
	// TenantQueueSlots caps the number of concurrently admitted
	// estimation requests per tenant (X-Relest-Tenant header, default
	// tenant when absent); requests past it are shed with 429 before they
	// reach the shared queue. 0 = unlimited.
	TenantQueueSlots int
	// TenantSynopsisBytes caps each tenant's resident static synopsis
	// bytes; synopsis creations past it are rejected with 413.
	// 0 = unlimited.
	TenantSynopsisBytes int64
	// SnapshotDir enables persistence: on Start the directory's snapshot
	// (if any) is restored and the append-only stream log is replayed and
	// then appended to; POST /v1/snapshot and Shutdown save the current
	// state. Empty disables persistence.
	SnapshotDir string
	// MaxBatchQueries caps the queries in one POST /v1/estimate/batch
	// request (default 256).
	MaxBatchQueries int
	// Collector receives both the daemon's metrics and the estimator's;
	// a fresh one is created when nil. /metrics serves its contents.
	Collector *obs.Collector
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Concurrency <= 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = defaultMaxUploadBytes
	}
	if c.MaxBatchQueries <= 0 {
		c.MaxBatchQueries = 256
	}
	return c
}

// defaultTenant is the tenant requests without an X-Relest-Tenant header
// are accounted to.
const defaultTenant = "default"

// Server is the relestd daemon. Create with New, run with Start, stop
// with Shutdown. All goroutines the daemon needs are spawned inside this
// package (the lint allowlist covers it), so callers — cmd/relestd, the
// examples — never write a `go` statement.
type Server struct {
	cfg Config
	reg *registry
	col *obs.Collector

	httpSrv  *http.Server
	listener net.Listener

	// tasks is the bounded admission queue: handlers enqueue with a
	// non-blocking send (full queue → 429), workers drain it.
	tasks    chan *task
	depth    atomic.Int64 // admitted-but-not-finished tasks, gauged as mQueueDepth
	tasksWG  sync.WaitGroup
	workerWG sync.WaitGroup
	serveWG  sync.WaitGroup
	stop     chan struct{}
	draining atomic.Bool

	// tenantMu guards tenantInflight: admitted-but-not-finished tasks per
	// tenant, capped by Config.TenantQueueSlots.
	tenantMu       sync.Mutex
	tenantInflight map[string]int

	serveErrMu sync.Mutex
	serveErr   error
}

// task is one admitted estimation request. The worker runs do and stores
// the outcome; the handler goroutine (blocked on done) writes the HTTP
// response, so the ResponseWriter is only ever touched from the handler.
type task struct {
	ctx      context.Context
	do       func(ctx context.Context) (int, any)
	tenant   string
	status   int
	body     any
	panicked bool
	done     chan struct{}
}

// New creates a daemon with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	col := cfg.Collector
	if col == nil {
		col = obs.NewCollector()
	}
	reg := newRegistry(col)
	reg.budget = cfg.SynopsisBytesBudget
	reg.tenantBudget = cfg.TenantSynopsisBytes
	s := &Server{
		cfg:            cfg,
		reg:            reg,
		col:            col,
		tasks:          make(chan *task, cfg.QueueDepth),
		stop:           make(chan struct{}),
		tenantInflight: map[string]int{},
	}
	s.httpSrv = &http.Server{Handler: s.routes()}
	return s
}

// Start binds the listener (synchronously, so Addr is valid on return)
// and spawns the serve loop and the estimation workers.
func (s *Server) Start() error {
	if s.cfg.SnapshotDir != "" {
		// Restore before the listener binds, so no request ever observes a
		// partially restored registry; only then start appending to the WAL.
		replayed, restored, err := s.reg.restoreSnapshot(s.cfg.SnapshotDir)
		if err != nil {
			return fmt.Errorf("server: restoring snapshot from %s: %w", s.cfg.SnapshotDir, err)
		}
		if restored {
			s.col.Add(mSnapshotRestores, 1)
			s.col.Add(mWALReplayed, float64(replayed))
			s.col.Set(mRelationBytes, float64(s.reg.relationBytes()))
			s.col.Set(mSynopsisBytes, float64(s.reg.synopsisBytes()))
		}
		wal, err := openStreamLog(s.cfg.SnapshotDir)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		s.reg.wal = wal
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.listener = ln
	for i := 0; i < s.cfg.Concurrency; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.serveWG.Add(1)
	go func() {
		defer s.serveWG.Done()
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErrMu.Lock()
			s.serveErr = err
			s.serveErrMu.Unlock()
		}
	}()
	return nil
}

// Addr returns the bound listen address (host:port), valid after Start.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Collector returns the server's metrics collector.
func (s *Server) Collector() *obs.Collector { return s.col }

// Handler returns the daemon's HTTP handler, for tests that want to
// drive it through httptest without a real listener. Workers must still
// be running (Start) for estimation requests to complete.
func (s *Server) Handler() http.Handler { return s.httpSrv.Handler }

// Shutdown drains the daemon: new estimation requests are refused with
// 503, the HTTP server stops accepting and waits for in-flight handlers
// (each of which waits for its queued estimate), then the workers exit.
// The queue is fully drained before Shutdown returns — admitted requests
// always get their answer.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.httpSrv.Shutdown(ctx)
	if err != nil {
		// The context expired before the handlers finished: force the
		// connections closed. In-flight estimates see their request
		// contexts cancel and abort between sampling rounds.
		_ = s.httpSrv.Close()
	}
	s.tasksWG.Wait()
	close(s.stop)
	s.workerWG.Wait()
	s.serveWG.Wait()
	if s.cfg.SnapshotDir != "" {
		// Save after the drain so the snapshot reflects every acknowledged
		// mutation, then stop appending to the WAL.
		if _, _, serr := s.reg.saveSnapshot(s.cfg.SnapshotDir); serr != nil && err == nil {
			err = fmt.Errorf("server: saving snapshot: %w", serr)
		} else if serr == nil {
			s.col.Add(mSnapshotSaves, 1)
		}
		if s.reg.wal != nil {
			if cerr := s.reg.wal.close(); cerr != nil && err == nil {
				err = fmt.Errorf("server: closing stream log: %w", cerr)
			}
		}
	}
	s.serveErrMu.Lock()
	defer s.serveErrMu.Unlock()
	if err == nil {
		err = s.serveErr
	}
	return err
}

// admit enqueues an estimation task unless the daemon is draining, the
// tenant's queue slots are exhausted, or the shared queue is full. It
// reports the admission verdict; on success the caller must wait on
// t.done.
func (s *Server) admit(t *task) (ok bool, status int, msg string) {
	if s.draining.Load() {
		return false, http.StatusServiceUnavailable, "server is draining"
	}
	if !s.acquireTenantSlot(t.tenant) {
		s.col.Add(mTenantShed, 1)
		return false, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q has no free queue slots, retry later", t.tenant)
	}
	s.tasksWG.Add(1)
	select {
	case s.tasks <- t:
		s.col.Set(mQueueDepth, float64(s.depth.Add(1)))
		return true, 0, ""
	default:
		s.tasksWG.Done()
		s.releaseTenantSlot(t.tenant)
		s.col.Add(mShed, 1)
		return false, http.StatusTooManyRequests, "estimation queue full, retry later"
	}
}

// acquireTenantSlot claims one of the tenant's queue slots; it reports
// false when the tenant is already at its cap.
func (s *Server) acquireTenantSlot(tenant string) bool {
	if s.cfg.TenantQueueSlots <= 0 {
		return true
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if s.tenantInflight[tenant] >= s.cfg.TenantQueueSlots {
		return false
	}
	s.tenantInflight[tenant]++
	return true
}

func (s *Server) releaseTenantSlot(tenant string) {
	if s.cfg.TenantQueueSlots <= 0 {
		return
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if s.tenantInflight[tenant] <= 1 {
		delete(s.tenantInflight, tenant)
	} else {
		s.tenantInflight[tenant]--
	}
}

// worker drains the admission queue until the daemon stops. Stop is only
// closed after every admitted task has finished (Shutdown waits on
// tasksWG first), so no task is ever abandoned.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case t := <-s.tasks:
			s.runTask(t)
		case <-s.stop:
			for {
				select {
				case t := <-s.tasks:
					s.runTask(t)
				default:
					return
				}
			}
		}
	}
}

// runTask executes one estimation task with panic isolation: a panicking
// estimate is recorded and answered with 500 instead of taking the
// daemon down.
func (s *Server) runTask(t *task) {
	defer func() {
		if r := recover(); r != nil {
			s.col.Add(mPanics, 1)
			t.panicked = true
			t.status = http.StatusInternalServerError
			t.body = ErrorResponse{Error: fmt.Sprintf("estimation panicked: %v", r)}
		}
		s.col.Set(mQueueDepth, float64(s.depth.Add(-1)))
		s.releaseTenantSlot(t.tenant)
		s.tasksWG.Done()
		close(t.done)
	}()
	t.status, t.body = t.do(t.ctx)
}
