package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestEstimateTieredJoin exercises the tier planner through the wire:
// an equi-join under the auto policy should be answered from the sketch
// tier, and the response must say so.
func TestEstimateTieredJoin(t *testing.T) {
	_, base := startServer(t, Config{})
	// A mild-skew pair: the sketch CI on the default heavy-skew dataset
	// is dominated by the head values' self-join mass and escalates, so
	// use the same shape the library calibration fixtures pin.
	status, raw := postJSON(t, base+"/v1/generate", GenerateRequest{
		Kind: "zipf-pair", N: 20_000, Domain: 300, Z1: 0.5, Z2: 0.5, Seed: 7,
	})
	if status != http.StatusCreated {
		t.Fatalf("generate: %d %s", status, raw)
	}
	status, raw = postJSON(t, base+"/v1/synopses/main", SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": 400, "R2": 400}, Seed: 9,
	})
	if status != http.StatusCreated {
		t.Fatalf("create synopsis: %d %s", status, raw)
	}

	status, raw = postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
		Mode: "plain", Seed: 3, TierPolicy: "auto", Precision: 0.15,
	})
	if status != http.StatusOK {
		t.Fatalf("tiered estimate: %d %s", status, raw)
	}
	resp := estimateResp(t, raw)
	if resp.Tier != "sketch" {
		t.Errorf("auto policy on an equi-join answered from %q, want sketch", resp.Tier)
	}
	if resp.Estimate.Value <= 0 {
		t.Errorf("sketch-tier value %v, want > 0", resp.Estimate.Value)
	}
	if resp.Estimate.Hi <= resp.Estimate.Lo {
		t.Errorf("degenerate CI [%v, %v]", resp.Estimate.Lo, resp.Estimate.Hi)
	}

	// A precision field alone also opts the request into tiered routing.
	status, raw = postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
		Mode: "plain", Seed: 3, Precision: 0.2,
	})
	if status != http.StatusOK {
		t.Fatalf("precision-only estimate: %d %s", status, raw)
	}
	if resp := estimateResp(t, raw); resp.Tier == "" {
		t.Error("precision-only request returned no tier field")
	}

	// The tiered calls above must have surfaced the tier metric families.
	status, raw = getBody(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	metrics := string(raw)
	for _, family := range []string{"relest_tier_answered_total", "relest_sketch_bytes"} {
		if !strings.Contains(metrics, family) {
			t.Errorf("metrics after tiered calls missing %s", family)
		}
	}
}

// TestEstimateTieredEscalation pins the escalation contract on the wire:
// sketch-ineligible shapes under auto answer from the sample tier with
// the same value as an untiered request, and the hard "sketch" policy
// fails them with 422 instead of silently downgrading.
func TestEstimateTieredEscalation(t *testing.T) {
	_, base := startServer(t, Config{})
	setupDataset(t, base, 10_000, 400)

	const sel = "count(select(R1, a < 40))"
	status, raw := postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: sel, Synopsis: "main", Mode: "plain", Seed: 3,
	})
	if status != http.StatusOK {
		t.Fatalf("untiered estimate: %d %s", status, raw)
	}
	if strings.Contains(string(raw), `"tier"`) {
		t.Errorf("legacy response body carries a tier field: %s", raw)
	}
	untiered := estimateResp(t, raw)

	status, raw = postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: sel, Synopsis: "main", Mode: "plain", Seed: 3, TierPolicy: "auto",
	})
	if status != http.StatusOK {
		t.Fatalf("auto estimate: %d %s", status, raw)
	}
	escalated := estimateResp(t, raw)
	if escalated.Tier != "sample" {
		t.Errorf("auto policy on a selection answered from %q, want sample", escalated.Tier)
	}
	if escalated.Estimate.Value != untiered.Estimate.Value ||
		escalated.Estimate.StdErr != untiered.Estimate.StdErr {
		t.Errorf("escalated estimate %+v differs from untiered %+v",
			escalated.Estimate, untiered.Estimate)
	}

	status, raw = postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: sel, Synopsis: "main", Mode: "plain", Seed: 3, TierPolicy: "sketch",
	})
	if status != http.StatusUnprocessableEntity {
		t.Errorf("sketch policy on a selection: %d %s, want 422", status, raw)
	}
}

// TestEstimateTierValidation rejects malformed tier requests up front.
func TestEstimateTierValidation(t *testing.T) {
	_, base := startServer(t, Config{})
	setupDataset(t, base, 2_000, 200)

	const q = "count(join(R1, R2, on a = a))"
	cases := []struct {
		name string
		req  EstimateRequest
	}{
		{"unknown policy", EstimateRequest{
			Query: q, Synopsis: "main", Mode: "plain", TierPolicy: "bogus"}},
		{"policy in sequential mode", EstimateRequest{
			Query: q, Synopsis: "main", Mode: "sequential", TierPolicy: "auto"}},
		{"precision in deadline mode", EstimateRequest{
			Query: q, Synopsis: "main", Mode: "deadline", BudgetMS: 50, Precision: 0.1}},
	}
	for _, c := range cases {
		if status, raw := postJSON(t, base+"/v1/estimate", c.req); status != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", c.name, status, raw)
		}
	}
}
