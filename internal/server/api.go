// Package server implements relestd, the estimation daemon: an HTTP
// facade over the estimator library that registers relations, maintains
// named synopses (static draws and incrementally-maintained samples), and
// serves estimation requests with admission control, per-request
// deadlines, and graceful drain.
//
// The service preserves the library's determinism contract end to end: a
// seed-pinned request returns byte-identical JSON whether the estimate is
// computed here or by calling the library directly, for every worker
// count. Request-level concurrency (the accept loop and the bounded
// worker pool in this package) never touches estimate reductions, which
// still run exclusively through internal/parallel.
package server

import (
	"encoding/json"
	"net/http"
)

// GenerateRequest asks the daemon to synthesize and register a dataset,
// mirroring cmd/relgen's kinds. Every dataset is deterministic for a
// given seed.
type GenerateRequest struct {
	// Kind selects the generator: "zipf-pair", "clustered" or "company".
	Kind string `json:"kind"`
	// N is the tuple count per relation (default 10000).
	N int `json:"n,omitempty"`
	// Domain is the join attribute domain size (default 1000).
	Domain int `json:"domain,omitempty"`
	// Z1, Z2 are the zipf-pair skews (defaults 0.5, 1.0).
	Z1 float64 `json:"z1,omitempty"`
	Z2 float64 `json:"z2,omitempty"`
	// Correlation is "positive", "independent" (default) or "negative".
	Correlation string `json:"correlation,omitempty"`
	// Smooth selects the orderly rank→value mapping for zipf-pair.
	Smooth bool `json:"smooth,omitempty"`
	// Regions is the cluster count for "clustered" (default 10).
	Regions int `json:"regions,omitempty"`
	// Departments is the department count for "company" (default 25).
	Departments int `json:"departments,omitempty"`
	// Seed drives the generator.
	Seed int64 `json:"seed,omitempty"`
}

// RelationInfo describes one registered relation.
type RelationInfo struct {
	Name   string `json:"name"`
	Rows   int    `json:"rows"`
	Schema string `json:"schema"`
}

// SynopsisRequest creates a named synopsis over registered relations.
type SynopsisRequest struct {
	// Kind is "static" (a one-shot SRSWOR draw that later sequential and
	// deadline estimates may extend) or "incremental" (bounded samples
	// maintained under an insert/delete stream).
	Kind string `json:"kind"`
	// Relations maps relation name → sample size (static) or is the list
	// of tracked relations with Capacity bounding each sample
	// (incremental; sizes in the map are ignored).
	Relations map[string]int `json:"relations"`
	// Seed drives the draw / reservoir decisions. Draws iterate relations
	// in sorted-name order, so a seed pins the synopsis exactly.
	Seed int64 `json:"seed,omitempty"`
	// Capacity is the per-relation sample bound for incremental synopses
	// (default 1000).
	Capacity int `json:"capacity,omitempty"`
}

// SynopsisInfo describes one named synopsis.
type SynopsisInfo struct {
	Name      string         `json:"name"`
	Kind      string         `json:"kind"`
	Tenant    string         `json:"tenant,omitempty"`
	Relations map[string]int `json:"relations"` // name → current sample size
	// Evicted reports that the synopsis's sample is currently dropped
	// under the byte budget; the next estimate referencing it rebuilds it
	// transparently from its creation spec (byte-identical redraw).
	Evicted bool `json:"evicted,omitempty"`
}

// StreamRequest feeds one insert or delete event to an incremental
// synopsis. Tuple values arrive as strings and are parsed against the
// tracked relation's schema ("" = NULL).
type StreamRequest struct {
	Op       string   `json:"op"` // "insert" or "delete"
	Relation string   `json:"relation"`
	Tuple    []string `json:"tuple"`
}

// EstimateRequest is the body of POST /v1/estimate.
type EstimateRequest struct {
	// Query in the internal/query language, bound against the synopsis's
	// relation schemas, e.g. "count(join(R1, R2, on a = a))".
	Query string `json:"query"`
	// Synopsis names the synopsis to estimate from.
	Synopsis string `json:"synopsis"`
	// Mode is "plain" (default), "sequential" (double sampling to a
	// target relative error) or "deadline" (grow samples until the budget
	// expires). Sequential and deadline run on a private clone of a
	// static synopsis; incremental synopses support plain mode only.
	Mode string `json:"mode,omitempty"`
	// Seed pins the request's randomness (split-sample grouping and, for
	// sequential/deadline, the sample extensions).
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the evaluation parallelism (0 = server default).
	// Estimates are bit-identical for every setting.
	Workers int `json:"workers,omitempty"`
	// Variance is "auto" (default), "none", "analytic", "split-sample" or
	// "jackknife".
	Variance string `json:"variance,omitempty"`
	// Confidence is the CI level (default 0.95).
	Confidence float64 `json:"confidence,omitempty"`
	// TargetRelErr is the sequential-mode goal (e.g. 0.05 for ±5%).
	TargetRelErr float64 `json:"target_rel_err,omitempty"`
	// BudgetMS is the deadline-mode sampling budget in milliseconds. When
	// zero, the budget is derived from the request deadline: 90% of the
	// time remaining when estimation starts.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// TimeoutMS caps this request's wall-clock time; 0 uses the server
	// default, and values above the server maximum are clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// TierPolicy selects the synopsis tiers a plain count query may use:
	// "auto" (sketch first, escalate per term), "sketch" (sketch only,
	// 422 when a term cannot be answered) or "sample" (the exact legacy
	// path, the default). Setting it (or Precision) routes the query
	// through the tier planner and fills the response's Tier field.
	TierPolicy string `json:"tier_policy,omitempty"`
	// Precision is the target relative CI half-width under which a
	// sketch-tier answer is accepted (default 0.1). Setting it implies
	// tier_policy "auto" unless one is given.
	Precision float64 `json:"precision,omitempty"`
}

// EstimateResult is the JSON shape of one estimate. Variance is a pointer
// because the library reports "no variance" as NaN, which JSON cannot
// encode; absent means no variance method applied.
type EstimateResult struct {
	Value          float64  `json:"value"`
	Variance       *float64 `json:"variance,omitempty"`
	StdErr         float64  `json:"std_err"`
	Lo             float64  `json:"lo"`
	Hi             float64  `json:"hi"`
	Confidence     float64  `json:"confidence"`
	VarianceMethod string   `json:"variance_method"`
	Terms          int      `json:"terms"`
}

// EstimateResponse is the body of a successful POST /v1/estimate. It
// carries no wall-clock fields: for a pinned seed the entire body is
// reproducible byte for byte, which the golden tests rely on.
type EstimateResponse struct {
	Query    string         `json:"query"`
	Synopsis string         `json:"synopsis"`
	Mode     string         `json:"mode"`
	Estimate EstimateResult `json:"estimate"`
	// SamplesConsumed is the per-relation sample size the final estimate
	// was computed from.
	SamplesConsumed map[string]int `json:"samples_consumed"`
	// Pilot and TargetMet are set in sequential mode.
	Pilot     *EstimateResult `json:"pilot,omitempty"`
	TargetMet *bool           `json:"target_met,omitempty"`
	// Rounds is the number of estimation rounds completed (deadline mode).
	Rounds int `json:"rounds,omitempty"`
	// Tier reports which synopsis tier(s) answered a tier-routed plain
	// count query: "sketch", "sample" or "mixed". Absent on legacy
	// requests (no tier_policy/precision), whose bodies stay byte-
	// identical to earlier releases.
	Tier string `json:"tier,omitempty"`
}

// BatchEstimateRequest is the body of POST /v1/estimate/batch: many
// estimation queries admitted as one task, sharing one queue slot and one
// plan cache, so compiled plans and materialized CSE prefixes are reused
// across the batch's queries.
type BatchEstimateRequest struct {
	Queries []EstimateRequest `json:"queries"`
	// TimeoutMS caps the whole batch's wall-clock time; 0 uses the server
	// default, and values above the server maximum are clamped to it.
	// Individual queries may set their own (smaller) TimeoutMS too.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchItemResult is one query's outcome inside a batch response. Exactly
// one of Estimate/Error is set, mirroring the singleton endpoint's bodies;
// Status is the HTTP status the query would have received on its own.
type BatchItemResult struct {
	Status   int               `json:"status"`
	Estimate *EstimateResponse `json:"estimate,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// BatchEstimateResponse is the body of POST /v1/estimate/batch. The
// request itself answers 200 whenever the batch ran (partial success is
// the contract); per-item failures live in Results.
type BatchEstimateResponse struct {
	Results   []BatchItemResult `json:"results"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
}

// DeleteResponse is the body of DELETE /v1/relations/{name} and
// DELETE /v1/synopses/{name}.
type DeleteResponse struct {
	Deleted string `json:"deleted"`
}

// SnapshotResponse is the body of POST /v1/snapshot.
type SnapshotResponse struct {
	Dir       string `json:"dir"`
	Relations int    `json:"relations"`
	Synopses  int    `json:"synopses"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// writeJSON writes v with the given status. Encoding failures past the
// header cannot be reported to the client; they surface in the server
// error metric instead of an error return.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// writeError writes a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, msg string) error {
	return writeJSON(w, status, ErrorResponse{Error: msg})
}
