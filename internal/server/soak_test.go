package server

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"relest/internal/bench"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// The soak harness: each scenario floods a live relestd with one flavor
// of adversarial traffic — skewed query mixes, bursts, hot-key eviction
// churn, insert/delete storms, client cancellations — while a calibration
// probe stream runs the PR-3 join experiment against the same server. The
// gate is that the statistics stay inside the library's own calibration
// bands while the daemon is under attack: load may delay an estimate, but
// it must never bias one.

// soakProbes is the calibration trial count per scenario. 100 trials of a
// nominal-0.95 CI put the acceptance band at [88, 99] — the same numbers
// internal/estimator's offline calibration gate uses.
const soakProbes = 100

// soakDataset mirrors the estimator calibration join experiment exactly:
// zipf-pair, 2000 rows, domain n/20, both sides Z = 0.5, independent.
var soakDataset = GenerateRequest{Kind: "zipf-pair", N: 2000, Domain: 100, Z1: 0.5, Z2: 0.5, Seed: 7}

// soakTruth recomputes the dataset client-side and returns the exact join
// size the probes are calibrated against. The server builds the pair from
// the same seed through the same generator, so this is the ground truth
// for what the server holds.
func soakTruth() float64 {
	rng := sampling.NewSource(soakDataset.Seed).Rand(0)
	r1, r2 := workload.JoinPair(rng, workload.JoinPairSpec{
		Z1: soakDataset.Z1, Z2: soakDataset.Z2, Domain: soakDataset.Domain,
		N1: soakDataset.N, N2: soakDataset.N, Correlation: workload.Independent,
	})
	return workload.ExactJoinSize(r1, "a", r2, "a")
}

// startSoakServer brings up a snapshot-enabled daemon with the
// calibration dataset and "main" synopsis loaded.
func startSoakServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.SnapshotDir = t.TempDir()
	s, base := startServer(t, cfg)
	status, raw := postJSON(t, base+"/v1/generate", soakDataset)
	if status != http.StatusCreated {
		t.Fatalf("generate: %d %s", status, raw)
	}
	status, raw = postJSON(t, base+"/v1/synopses/main", SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": 100, "R2": 100}, Seed: 9,
	})
	if status != http.StatusCreated {
		t.Fatalf("create main: %d %s", status, raw)
	}
	return s, base
}

// runProbes executes the calibration stream: soakProbes independent
// trials, each drawing its own synopsis (seed 1000+i, 5% sample) and
// estimating the join count with analytic variance at 0.95 confidence.
// Trials land in per-index slots and are reduced in index order, so the
// statistics are independent of scheduling; shed responses retry rather
// than drop, so saturation cannot thin the trial set.
func runProbes(t *testing.T, d *workload.Driver) (bench.ErrorStats, bench.Coverage) {
	t.Helper()
	trials := make([]workload.Trial, soakProbes)
	workload.Fanout(4, soakProbes, func(i int) {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		name := fmt.Sprintf("probe-%d", i)
		status, raw, err := d.DoRetry(ctx, "/v1/synopses/"+name, SynopsisRequest{
			Kind: "static", Relations: map[string]int{"R1": 100, "R2": 100}, Seed: 1000 + int64(i),
		})
		if err != nil || status != http.StatusCreated {
			t.Errorf("probe %d synopsis: %d %s (%v)", i, status, raw, err)
			return
		}
		trials[i] = d.Estimate(ctx, EstimateRequest{
			Query: "count(join(R1, R2, on a = a))", Synopsis: name,
			Seed: 3, Variance: "analytic", Confidence: 0.95,
		})
	})
	truth := soakTruth()
	var errs bench.ErrorStats
	var cov bench.Coverage
	for i, tr := range trials {
		if !tr.OK {
			t.Errorf("probe %d failed with status %d", i, tr.Status)
			continue
		}
		errs.Observe(tr.Value, truth)
		cov.Observe(tr.Lo, tr.Hi, truth)
	}
	return errs, cov
}

// assertCalibrated holds the probe statistics to the PR-3 join bands.
func assertCalibrated(t *testing.T, errs bench.ErrorStats, cov bench.Coverage) {
	t.Helper()
	if n := errs.N(); n != soakProbes {
		t.Errorf("only %d/%d probes produced estimates", n, soakProbes)
	}
	if bias := errs.Bias(); bias < -5 || bias > 5 {
		t.Errorf("bias under load = %+.2f%%, want within [-5, 5]", bias)
	}
	if rate := cov.Rate(); rate < 88 || rate > 99 {
		t.Errorf("CI coverage under load = %.1f%%, want within [88, 99] for nominal 0.95", rate)
	}
	t.Logf("probes: ARE %.2f%%, bias %+.2f%%, coverage %.1f%%", errs.ARE(), errs.Bias(), cov.Rate())
}

// snapshotUnderLoad saves a snapshot while traffic is in flight — every
// scenario exercises save-under-load at its midpoint.
func snapshotUnderLoad(t *testing.T, d *workload.Driver) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if status, raw, err := d.DoRetry(ctx, "/v1/snapshot", nil); err != nil || status != http.StatusOK {
		t.Errorf("snapshot under load: %d %s (%v)", status, raw, err)
	}
}

// background starts fn in a goroutine and returns a wait func. (Test-only
// plumbing; all server-side estimation still reduces through
// internal/parallel.)
func background(fn func()) func() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
	return wg.Wait
}

func TestSoakScenarios(t *testing.T) {
	truth := soakTruth()
	if truth <= 0 {
		t.Fatalf("degenerate dataset: exact join size %v", truth)
	}

	// zipf-mix: a Zipf-skewed mix over query templates — the realistic
	// steady-state workload, heavy on a few shapes with a long tail.
	t.Run("zipf-mix", func(t *testing.T) {
		_, base := startSoakServer(t, Config{Concurrency: 4, QueueDepth: 64})
		d := &workload.Driver{BaseURL: base}
		templates := []EstimateRequest{
			{Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 1},
			{Query: "count(R1)", Synopsis: "main", Seed: 2, Variance: "jackknife"},
			{Query: "count(select(R1, a < 40))", Synopsis: "main", Seed: 3},
			{Query: "sum(R2, a)", Synopsis: "main", Seed: 4},
			{Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Mode: "sequential", TargetRelErr: 0.3, Seed: 5},
		}
		picks := workload.PickSpec{Keys: len(templates), Z: 1}.Picks(rand.New(rand.NewSource(41)), 300)
		wait := background(func() {
			statuses := make([]int, len(picks))
			workload.Fanout(4, len(picks), func(i int) {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				tr := d.Estimate(ctx, templates[picks[i]])
				statuses[i] = tr.Status
				if i == len(picks)/2 {
					snapshotUnderLoad(t, d)
				}
			})
			for i, status := range statuses {
				if status != http.StatusOK {
					t.Errorf("background trial %d (template %d): status %d", i, picks[i], status)
				}
			}
		})
		errs, cov := runProbes(t, d)
		wait()
		assertCalibrated(t, errs, cov)
	})

	// bursty: the arrival envelope alternates quiet ticks with bursts
	// that overrun the worker pool, forcing queueing and shed-retry while
	// the probes run.
	t.Run("bursty", func(t *testing.T) {
		_, base := startSoakServer(t, Config{Concurrency: 2, QueueDepth: 8})
		d := &workload.Driver{BaseURL: base}
		env := workload.BurstSpec{Base: 1, Peak: 12, Period: 6, Duty: 2}.Envelope(24)
		wait := background(func() {
			for tick, k := range env {
				workload.Fanout(k, k, func(int) {
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					tr := d.Estimate(ctx, EstimateRequest{
						Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: int64(tick),
					})
					if tr.Status != http.StatusOK {
						t.Errorf("burst tick %d: status %d", tick, tr.Status)
					}
				})
				if tick == len(env)/2 {
					snapshotUnderLoad(t, d)
				}
			}
		})
		errs, cov := runProbes(t, d)
		wait()
		assertCalibrated(t, errs, cov)
		if d.Retries.Load() == 0 {
			t.Log("note: bursts never saturated the queue (no shed retries)")
		}
	})

	// hot-key: a skewed pick stream hammers a handful of synopses while
	// the byte budget is squeezed below their footprint, driving constant
	// eviction and rebuild. Rebuilt answers must stay byte-identical and
	// the probes must stay calibrated through the churn.
	t.Run("hot-key", func(t *testing.T) {
		s, base := startSoakServer(t, Config{Concurrency: 4, QueueDepth: 64})
		d := &workload.Driver{BaseURL: base}
		const hot = 5
		for k := 0; k < hot; k++ {
			status, raw := postJSON(t, base+fmt.Sprintf("/v1/synopses/hot-%d", k), SynopsisRequest{
				Kind: "static", Relations: map[string]int{"R1": 150, "R2": 150}, Seed: 100 + int64(k),
			})
			if status != http.StatusCreated {
				t.Fatalf("create hot-%d: %d %s", k, status, raw)
			}
		}
		// Goldens before the squeeze; the budget then holds roughly half
		// the resident set, so the skewed stream keeps evicting the tail.
		hotReq := func(k int) EstimateRequest {
			return EstimateRequest{
				Query: "count(join(R1, R2, on a = a))", Synopsis: fmt.Sprintf("hot-%d", k), Seed: 7,
			}
		}
		goldens := make([][]byte, hot)
		for k := 0; k < hot; k++ {
			status, raw := postJSON(t, base+"/v1/estimate", hotReq(k))
			if status != http.StatusOK {
				t.Fatalf("golden hot-%d: %d %s", k, status, raw)
			}
			goldens[k] = raw
		}
		s.reg.budget = int64(s.reg.synopsisBytes()) / 2

		picks := workload.PickSpec{Keys: hot, Z: 2}.Picks(rand.New(rand.NewSource(43)), 250)
		wait := background(func() {
			workload.Fanout(4, len(picks), func(i int) {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				k := picks[i]
				status, raw, err := d.DoRetry(ctx, "/v1/estimate", hotReq(k))
				if err != nil || status != http.StatusOK {
					t.Errorf("hot trial %d (hot-%d): %d %s (%v)", i, k, status, raw, err)
					return
				}
				if !bytes.Equal(raw, goldens[k]) {
					t.Errorf("hot-%d answer drifted under eviction churn:\ngolden %s\ngot    %s", k, goldens[k], raw)
				}
				if i == len(picks)/2 {
					snapshotUnderLoad(t, d)
				}
			})
		})
		errs, cov := runProbes(t, d)
		wait()
		assertCalibrated(t, errs, cov)
		if got := s.col.Metrics().Counter(mEvictions).Value(); got < 1 {
			t.Errorf("eviction churn never happened (evictions = %v)", got)
		}
		if got := s.col.Metrics().Counter(mRebuilds).Value(); got < 1 {
			t.Errorf("no transparent rebuilds under churn (rebuilds = %v)", got)
		}
	})

	// churn-heavy: a 45%-delete insert/delete storm streams into an
	// incremental synopsis (and its write-ahead log) while the probes
	// estimate from static synopses. The reservoir must track the live
	// population exactly through the churn.
	t.Run("churn-heavy", func(t *testing.T) {
		s, base := startSoakServer(t, Config{Concurrency: 4, QueueDepth: 64})
		d := &workload.Driver{BaseURL: base}
		status, raw := postJSON(t, base+"/v1/synopses/streamed", SynopsisRequest{
			Kind: "incremental", Relations: map[string]int{"R1": 0}, Seed: 17, Capacity: 64,
		})
		if status != http.StatusCreated {
			t.Fatalf("create streamed: %d %s", status, raw)
		}
		ops := workload.Stream(rand.New(rand.NewSource(47)), workload.StreamSpec{
			Rel: "R1", Ops: 400, DeleteFrac: 0.45, Z: 1, Domain: 50,
		})
		wait := background(func() {
			// Events must apply in order — a delete may target the
			// previous insert — so the storm is a single writer lane.
			for i, op := range ops {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				ev := StreamRequest{Op: "insert", Relation: op.Rel, Tuple: []string{op.Tuple[0].String(), op.Tuple[1].String()}}
				if op.Delete {
					ev.Op = "delete"
				}
				status, raw, err := d.DoRetry(ctx, "/v1/synopses/streamed/stream", ev)
				cancel()
				if err != nil || status != http.StatusOK {
					t.Errorf("stream op %d: %d %s (%v)", i, status, raw, err)
				}
				if i == len(ops)/2 {
					snapshotUnderLoad(t, d)
				}
			}
		})
		errs, cov := runProbes(t, d)
		wait()
		assertCalibrated(t, errs, cov)

		// The reservoir knows the live population size exactly.
		want := workload.Materialize("R1", ops).Len()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		tr := d.Estimate(ctx, EstimateRequest{Query: "count(R1)", Synopsis: "streamed", Seed: 3})
		if !tr.OK {
			t.Fatalf("post-churn count: status %d", tr.Status)
		}
		if tr.Value != float64(want) {
			t.Errorf("post-churn count = %v, want exactly %d", tr.Value, want)
		}
		if got := s.col.Metrics().Counter(mWALEvents).Value(); got != float64(len(ops)) {
			t.Errorf("WAL events = %v, want %d", got, len(ops))
		}
	})

	// cancellation-storm: half the background clients abandon their
	// requests after a random delay. The server must shrug — cancelled
	// work answers 499/504 and frees its worker, successes stay correct,
	// and nothing 500s — while the probes stay calibrated. The abandoned
	// requests run deadline mode against a heavy uploaded pair (the
	// calibration dataset answers in microseconds, far inside any cancel
	// delay), so every abandonment genuinely lands mid-flight.
	t.Run("cancellation-storm", func(t *testing.T) {
		s, base := startSoakServer(t, Config{Concurrency: 2, QueueDepth: 32})
		d := &workload.Driver{BaseURL: base}
		hr1, hr2 := workload.JoinPair(rand.New(rand.NewSource(99)), workload.JoinPairSpec{
			Z1: 0.5, Z2: 0.5, Domain: 400, N1: 400_000, N2: 400_000,
		})
		for name, rel := range map[string]*relation.Relation{"H1": hr1, "H2": hr2} {
			var buf bytes.Buffer
			if err := relation.ExportCSV(rel, &buf); err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(base+"/v1/relations/"+name, "text/csv", &buf)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("upload %s: %d", name, resp.StatusCode)
			}
		}
		status, raw := postJSON(t, base+"/v1/synopses/hold", SynopsisRequest{
			Kind: "static", Relations: map[string]int{"H1": 50, "H2": 50}, Seed: 9,
		})
		if status != http.StatusCreated {
			t.Fatalf("create hold: %d %s", status, raw)
		}

		plans := workload.CancelSpec{
			N: 60, Frac: 0.4, MinAfter: time.Millisecond, MaxAfter: 25 * time.Millisecond,
		}.Schedule(rand.New(rand.NewSource(53)))
		statuses := make([]int, len(plans))
		wait := background(func() {
			workload.Fanout(4, len(plans), func(i int) {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				req := EstimateRequest{Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: int64(i)}
				if plans[i].Cancel {
					var cancelEarly context.CancelFunc
					ctx, cancelEarly = context.WithTimeout(ctx, plans[i].After)
					defer cancelEarly()
					req = EstimateRequest{
						Query: "count(join(H1, H2, on a = a))", Synopsis: "hold",
						Mode: "deadline", BudgetMS: 5000, Seed: int64(i), Variance: "none",
					}
				}
				statuses[i] = d.Estimate(ctx, req).Status
				if i == len(plans)/2 {
					snapshotUnderLoad(t, d)
				}
			})
		})
		errs, cov := runProbes(t, d)
		wait()
		assertCalibrated(t, errs, cov)

		aborted := 0
		for i, status := range statuses {
			switch {
			case status == http.StatusOK:
			case status == 0 || status == statusClientClosedRequest || status == http.StatusGatewayTimeout:
				// 0: the client tore the connection down before reading
				// any response — the server side of the same abandonment.
				aborted++
			default:
				t.Errorf("storm trial %d: unexpected status %d", i, status)
			}
			if !plans[i].Cancel && status != http.StatusOK {
				t.Errorf("storm trial %d was never cancelled but answered %d", i, status)
			}
		}
		if aborted == 0 {
			t.Error("cancellation storm landed no abandonments; the scenario tested nothing")
		}
		if got := s.col.Metrics().Counter(mCancelled).Value(); got < 1 {
			t.Errorf("server observed no cancellations (mCancelled = %v)", got)
		}
	})
}
