package server

import (
	"strconv"

	"relest/internal/obs"
)

// Metric names for the daemon itself, alongside the estimator's relest_*
// families in the shared collector. Label values go through obs.L at the
// call site.
const (
	// mRequests counts finished estimation requests, labelled by HTTP
	// status code.
	mRequests = "relestd_requests_total"
	// mQueueDepth gauges the number of estimation tasks waiting or
	// running.
	mQueueDepth = "relestd_queue_depth"
	// mShed counts requests rejected with 429 because the queue was full.
	mShed = "relestd_shed_total"
	// mCancelled counts estimation requests aborted by context
	// cancellation or expiry (client gone or request timeout).
	mCancelled = "relestd_cancelled_total"
	// mPanics counts estimation tasks that panicked and were isolated.
	mPanics = "relestd_panics_total"
	// mLatency is the request latency histogram in seconds, labelled by
	// estimation mode.
	mLatency = "relestd_request_seconds"

	// mEvictions counts static synopses whose samples were dropped under
	// the synopsis byte budget.
	mEvictions = "relestd_synopsis_evictions_total"
	// mRebuilds counts transparent rebuilds of evicted synopses on their
	// next reference.
	mRebuilds = "relestd_synopsis_rebuilds_total"
	// mTenantShed counts requests rejected with 429 because the tenant's
	// queue slots were exhausted.
	mTenantShed = "relestd_tenant_shed_total"
	// mQuotaRejected counts synopsis creations rejected with 413 because
	// they would exceed the tenant's synopsis byte quota.
	mQuotaRejected = "relestd_quota_rejected_total"
	// mBatch counts batched estimate requests (each admitted once,
	// regardless of how many queries it carries).
	mBatch = "relestd_batch_requests_total"
	// mBatchQueries counts individual queries inside batch requests,
	// labelled by per-item HTTP status.
	mBatchQueries = "relestd_batch_queries_total"
	// mSnapshotSaves / mSnapshotRestores count snapshot round-trips.
	mSnapshotSaves    = "relestd_snapshot_saves_total"
	mSnapshotRestores = "relestd_snapshot_restores_total"
	// mWALEvents counts stream events appended to the append-only log;
	// mWALReplayed counts events (including logged synopsis creations)
	// replayed into synopses at restore.
	mWALEvents   = "relestd_wal_events_total"
	mWALReplayed = "relestd_wal_replayed_total"
	// mWALTorn counts restores that found (and truncated away) a torn
	// trailing WAL record — the signature of a crash between a record's
	// write and its fsync; every acknowledged event before it replayed.
	mWALTorn = "relestd_wal_torn_total"
	// mWALSkipped counts WAL events dropped at restore because their
	// synopsis could not be made resident (e.g. its base relations were
	// never snapshotted); nonzero means acknowledged updates were lost.
	mWALSkipped = "relestd_wal_skipped_total"

	// Storage-footprint gauges, shared names with the estimator and
	// cmd/relest (see obs.MetricRelationBytes / obs.MetricSynopsisBytes).
	mRelationBytes = obs.MetricRelationBytes
	mSynopsisBytes = obs.MetricSynopsisBytes
)

// reqMetric labels the request counter with the HTTP status code.
func reqMetric(status int) string {
	return obs.L(mRequests, "code", strconv.Itoa(status))
}

// latencyMetric labels the latency histogram with the estimation mode.
func latencyMetric(mode string) string {
	return obs.L(mLatency, "mode", mode)
}

// batchQueryMetric labels the per-item batch counter with the item's
// HTTP status code.
func batchQueryMetric(status int) string {
	return obs.L(mBatchQueries, "code", strconv.Itoa(status))
}
