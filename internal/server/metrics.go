package server

import (
	"strconv"

	"relest/internal/obs"
)

// Metric names for the daemon itself, alongside the estimator's relest_*
// families in the shared collector. Label values go through obs.L at the
// call site.
const (
	// mRequests counts finished estimation requests, labelled by HTTP
	// status code.
	mRequests = "relestd_requests_total"
	// mQueueDepth gauges the number of estimation tasks waiting or
	// running.
	mQueueDepth = "relestd_queue_depth"
	// mShed counts requests rejected with 429 because the queue was full.
	mShed = "relestd_shed_total"
	// mCancelled counts estimation requests aborted by context
	// cancellation or expiry (client gone or request timeout).
	mCancelled = "relestd_cancelled_total"
	// mPanics counts estimation tasks that panicked and were isolated.
	mPanics = "relestd_panics_total"
	// mLatency is the request latency histogram in seconds, labelled by
	// estimation mode.
	mLatency = "relestd_request_seconds"

	// Storage-footprint gauges, shared names with the estimator and
	// cmd/relest (see obs.MetricRelationBytes / obs.MetricSynopsisBytes).
	mRelationBytes = obs.MetricRelationBytes
	mSynopsisBytes = obs.MetricSynopsisBytes
)

// reqMetric labels the request counter with the HTTP status code.
func reqMetric(status int) string {
	return obs.L(mRequests, "code", strconv.Itoa(status))
}

// latencyMetric labels the latency histogram with the estimation mode.
func latencyMetric(mode string) string {
	return obs.L(mLatency, "mode", mode)
}
