package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startServer creates, starts, and tears down a daemon on a free port,
// returning it with its base URL.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, "http://" + s.Addr()
}

// postJSON posts v as JSON and returns the status and raw body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("closing body: %v", err)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// getBody GETs a URL and returns the status and raw body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("closing body: %v", err)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// setupDataset registers a deterministic zipf-pair (R1, R2) of n tuples
// each and a static synopsis named "main" of sample tuples per relation.
func setupDataset(t *testing.T, base string, n, sample int) {
	t.Helper()
	status, body := postJSON(t, base+"/v1/generate", GenerateRequest{
		Kind: "zipf-pair", N: n, Domain: 200, Seed: 7,
	})
	if status != http.StatusCreated {
		t.Fatalf("generate: %d %s", status, body)
	}
	status, body = postJSON(t, base+"/v1/synopses/main", SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": sample, "R2": sample}, Seed: 9,
	})
	if status != http.StatusCreated {
		t.Fatalf("create synopsis: %d %s", status, body)
	}
}

// setupHeavyDataset registers a join pair big enough that deadline-mode
// sample growth cannot exhaust it within a sub-second budget: the full
// equi-join enumerates hundreds of millions of pairs, and round cost
// grows quadratically with the sample, so the budget — not sample
// exhaustion — ends every run. Load-shedding, cancellation, and drain
// tests rely on these estimates actually occupying their workers.
func setupHeavyDataset(t *testing.T, base string) {
	t.Helper()
	status, body := postJSON(t, base+"/v1/generate", GenerateRequest{
		Kind: "zipf-pair", N: 400_000, Domain: 400, Z1: 0.5, Z2: 0.5, Seed: 7,
	})
	if status != http.StatusCreated {
		t.Fatalf("generate: %d %s", status, body)
	}
	status, body = postJSON(t, base+"/v1/synopses/main", SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": 50, "R2": 50}, Seed: 9,
	})
	if status != http.StatusCreated {
		t.Fatalf("create synopsis: %d %s", status, body)
	}
}

// estimateResp decodes an EstimateResponse body.
func estimateResp(t *testing.T, raw []byte) EstimateResponse {
	t.Helper()
	var resp EstimateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return resp
}

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRelationAndSynopsisLifecycle drives the registration endpoints:
// CSV upload, generation, listing, duplicate rejection.
func TestRelationAndSynopsisLifecycle(t *testing.T) {
	_, base := startServer(t, Config{})

	csv := "a,id\n1,1\n2,2\n3,3\n"
	resp, err := http.Post(base+"/v1/relations/tiny", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, raw)
	}

	// Duplicate name → 409.
	resp, err = http.Post(base+"/v1/relations/tiny", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate upload: want 409, got %d", resp.StatusCode)
	}

	setupDataset(t, base, 2000, 200)

	status, raw := getBody(t, base+"/v1/relations")
	if status != http.StatusOK {
		t.Fatalf("list relations: %d %s", status, raw)
	}
	var rels []RelationInfo
	if err := json.Unmarshal(raw, &rels); err != nil {
		t.Fatal(err)
	}
	if len(rels) != 3 || rels[0].Name != "R1" || rels[2].Name != "tiny" {
		t.Fatalf("relations = %+v", rels)
	}

	status, raw = getBody(t, base+"/v1/synopses")
	if status != http.StatusOK {
		t.Fatalf("list synopses: %d %s", status, raw)
	}
	var syns []SynopsisInfo
	if err := json.Unmarshal(raw, &syns); err != nil {
		t.Fatal(err)
	}
	if len(syns) != 1 || syns[0].Name != "main" || syns[0].Relations["R1"] != 200 {
		t.Fatalf("synopses = %+v", syns)
	}

	// Unknown relation in a synopsis spec → 400.
	status, raw = postJSON(t, base+"/v1/synopses/bad", SynopsisRequest{
		Kind: "static", Relations: map[string]int{"nope": 10},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("bad synopsis: want 400, got %d %s", status, raw)
	}
}

// TestEstimateModes drives plain count/sum/avg, sequential, and deadline
// estimation through the HTTP facade.
func TestEstimateModes(t *testing.T) {
	_, base := startServer(t, Config{})
	setupDataset(t, base, 2000, 200)

	t.Run("plain-count", func(t *testing.T) {
		status, raw := postJSON(t, base+"/v1/estimate", EstimateRequest{
			Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 3,
		})
		if status != http.StatusOK {
			t.Fatalf("estimate: %d %s", status, raw)
		}
		resp := estimateResp(t, raw)
		if resp.Estimate.Value <= 0 || resp.Estimate.StdErr <= 0 {
			t.Errorf("estimate = %+v", resp.Estimate)
		}
		if resp.SamplesConsumed["R1"] != 200 || resp.SamplesConsumed["R2"] != 200 {
			t.Errorf("samples consumed = %v", resp.SamplesConsumed)
		}
	})

	t.Run("plain-sum-avg", func(t *testing.T) {
		status, raw := postJSON(t, base+"/v1/estimate", EstimateRequest{
			Query: "sum(select(R1, a > 10), a)", Synopsis: "main", Seed: 3,
		})
		if status != http.StatusOK {
			t.Fatalf("sum: %d %s", status, raw)
		}
		if resp := estimateResp(t, raw); resp.Estimate.Value <= 0 {
			t.Errorf("sum = %+v", resp.Estimate)
		}
		status, raw = postJSON(t, base+"/v1/estimate", EstimateRequest{
			Query: "avg(R1, a)", Synopsis: "main", Seed: 3,
		})
		if status != http.StatusOK {
			t.Fatalf("avg: %d %s", status, raw)
		}
		if resp := estimateResp(t, raw); resp.Estimate.Value <= 0 {
			t.Errorf("avg = %+v", resp.Estimate)
		}
	})

	t.Run("sequential", func(t *testing.T) {
		status, raw := postJSON(t, base+"/v1/estimate", EstimateRequest{
			Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
			Mode: "sequential", TargetRelErr: 0.2, Seed: 5,
		})
		if status != http.StatusOK {
			t.Fatalf("sequential: %d %s", status, raw)
		}
		resp := estimateResp(t, raw)
		if resp.Pilot == nil || resp.TargetMet == nil {
			t.Fatalf("sequential response missing pilot/target_met: %s", raw)
		}
		if resp.SamplesConsumed["R1"] < 200 {
			t.Errorf("sequential did not grow the sample: %v", resp.SamplesConsumed)
		}
		// The shared synopsis must be untouched: sequential ran on a clone.
		_, raw = getBody(t, base+"/v1/synopses")
		var syns []SynopsisInfo
		if err := json.Unmarshal(raw, &syns); err != nil {
			t.Fatal(err)
		}
		if syns[0].Relations["R1"] != 200 {
			t.Errorf("sequential mutated the shared synopsis: %+v", syns[0])
		}
	})

	t.Run("deadline-budget-expiry", func(t *testing.T) {
		// A dataset large enough that 150ms cannot exhaust the samples:
		// the budget, not exhaustion, ends the run, and the partial-round
		// estimate still carries its CI.
		_, bigBase := startServer(t, Config{})
		setupHeavyDataset(t, bigBase)
		status, raw := postJSON(t, bigBase+"/v1/estimate", EstimateRequest{
			Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
			Mode: "deadline", BudgetMS: 150, Seed: 5,
		})
		if status != http.StatusOK {
			t.Fatalf("deadline: %d %s", status, raw)
		}
		resp := estimateResp(t, raw)
		if resp.Rounds < 1 {
			t.Errorf("deadline made no rounds: %s", raw)
		}
		if resp.Estimate.StdErr <= 0 || resp.Estimate.Lo >= resp.Estimate.Hi {
			t.Errorf("deadline estimate lacks a CI: %+v", resp.Estimate)
		}
		if resp.SamplesConsumed["R1"] < 50 {
			t.Errorf("deadline reported no samples consumed: %s", raw)
		}
	})

	t.Run("validation", func(t *testing.T) {
		for _, tc := range []struct {
			req  EstimateRequest
			want int
		}{
			{EstimateRequest{Synopsis: "main"}, http.StatusBadRequest},
			{EstimateRequest{Query: "count(R1)"}, http.StatusBadRequest},
			{EstimateRequest{Query: "count(R1)", Synopsis: "nope"}, http.StatusNotFound},
			{EstimateRequest{Query: "count(R1)", Synopsis: "main", Mode: "warp"}, http.StatusBadRequest},
			{EstimateRequest{Query: "count(nope)", Synopsis: "main"}, http.StatusBadRequest},
			{EstimateRequest{Query: "count(R1)", Synopsis: "main", Variance: "psychic"}, http.StatusBadRequest},
			{EstimateRequest{Query: "sum(R1, a)", Synopsis: "main", Mode: "sequential"}, http.StatusBadRequest},
			{EstimateRequest{Query: "group(R1, a)", Synopsis: "main"}, http.StatusBadRequest},
		} {
			status, raw := postJSON(t, base+"/v1/estimate", tc.req)
			if status != tc.want {
				t.Errorf("%+v: want %d, got %d %s", tc.req, tc.want, status, raw)
			}
		}
	})
}

// TestIncrementalSynopsisStream creates an incremental synopsis, feeds
// it the full relation as an insert stream, estimates from it, applies a
// delete, and checks mode restrictions.
func TestIncrementalSynopsisStream(t *testing.T) {
	_, base := startServer(t, Config{})
	status, raw := postJSON(t, base+"/v1/generate", GenerateRequest{
		Kind: "zipf-pair", N: 300, Domain: 50, Seed: 7,
	})
	if status != http.StatusCreated {
		t.Fatalf("generate: %d %s", status, raw)
	}
	status, raw = postJSON(t, base+"/v1/synopses/live", SynopsisRequest{
		Kind: "incremental", Relations: map[string]int{"R1": 0}, Seed: 11, Capacity: 100,
	})
	if status != http.StatusCreated {
		t.Fatalf("create incremental: %d %s", status, raw)
	}

	for i := 0; i < 300; i++ {
		status, raw = postJSON(t, base+"/v1/synopses/live/stream", StreamRequest{
			Op: "insert", Relation: "R1",
			Tuple: []string{fmt.Sprint(i%50 + 1), fmt.Sprint(i)},
		})
		if status != http.StatusOK {
			t.Fatalf("insert %d: %d %s", i, status, raw)
		}
	}

	// A base-relation COUNT from the maintained synopsis is exact: the
	// estimator scales the sample by the maintained cardinality.
	status, raw = postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: "count(R1)", Synopsis: "live", Variance: "none",
	})
	if status != http.StatusOK {
		t.Fatalf("estimate: %d %s", status, raw)
	}
	if resp := estimateResp(t, raw); resp.Estimate.Value < 299.5 || resp.Estimate.Value > 300.5 {
		t.Errorf("count over incremental synopsis = %v, want 300", resp.Estimate.Value)
	}

	status, raw = postJSON(t, base+"/v1/synopses/live/stream", StreamRequest{
		Op: "delete", Relation: "R1", Tuple: []string{"1", "0"},
	})
	if status != http.StatusOK {
		t.Fatalf("delete: %d %s", status, raw)
	}
	status, raw = postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: "count(R1)", Synopsis: "live", Variance: "none",
	})
	if status != http.StatusOK {
		t.Fatalf("estimate after delete: %d %s", status, raw)
	}
	if resp := estimateResp(t, raw); resp.Estimate.Value < 298.5 || resp.Estimate.Value > 299.5 {
		t.Errorf("count after delete = %v, want 299", resp.Estimate.Value)
	}

	// Sample extensions need base relations; snapshots have none.
	status, raw = postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: "count(R1)", Synopsis: "live", Mode: "sequential",
	})
	if status != http.StatusBadRequest {
		t.Errorf("sequential over incremental: want 400, got %d %s", status, raw)
	}

	// Stream events against a static synopsis are rejected.
	status, raw = postJSON(t, base+"/v1/synopses/live/stream", StreamRequest{
		Op: "warp", Relation: "R1", Tuple: []string{"1", "1"},
	})
	if status != http.StatusBadRequest {
		t.Errorf("bad op: want 400, got %d %s", status, raw)
	}
}

// TestQueueFullSheds429 pins the admission control: with one worker and
// a one-deep queue, a third concurrent estimate is shed with 429 and
// counted in the shed metric.
func TestQueueFullSheds429(t *testing.T) {
	s, base := startServer(t, Config{Concurrency: 1, QueueDepth: 1})
	setupHeavyDataset(t, base)

	slow := EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
		Mode: "deadline", BudgetMS: 2000, Seed: 5, Variance: "none",
	}
	results := make(chan int, 2)
	send := func() {
		status, _ := postJSON(t, base+"/v1/estimate", slow)
		results <- status
	}

	go send()
	// Wait until the worker has picked the first task up (queue channel
	// empty, one task in flight) so the second send lands in the queue.
	waitFor(t, 5*time.Second, "worker pickup", func() bool {
		return len(s.tasks) == 0 && s.depth.Load() == 1
	})
	go send()
	waitFor(t, 5*time.Second, "queue occupancy", func() bool {
		return len(s.tasks) == 1 && s.depth.Load() == 2
	})

	status, raw := postJSON(t, base+"/v1/estimate", slow)
	if status != http.StatusTooManyRequests {
		t.Fatalf("third estimate: want 429, got %d %s", status, raw)
	}
	if shed := s.col.Metrics().Counter(mShed).Value(); shed < 1 {
		t.Errorf("shed counter = %v, want ≥ 1", shed)
	}

	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Errorf("admitted estimate %d: want 200, got %d", i, status)
		}
	}
	waitFor(t, 5*time.Second, "queue drain", func() bool { return s.depth.Load() == 0 })
}

// TestConcurrentLoadSheds floods the daemon with 64 concurrent
// estimation requests against a small queue: every response is either a
// well-formed 200 or a 429, the shed counter matches, and the daemon
// returns to an idle, healthy state.
func TestConcurrentLoadSheds(t *testing.T) {
	s, base := startServer(t, Config{Concurrency: 4, QueueDepth: 8})
	setupHeavyDataset(t, base)

	req := EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
		Mode: "deadline", BudgetMS: 150, Seed: 5, Variance: "none",
	}
	const inFlight = 64
	results := make(chan int, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			status, raw := postJSON(t, base+"/v1/estimate", req)
			if status == http.StatusOK {
				resp := estimateResp(t, raw)
				if resp.Rounds < 1 || resp.Estimate.Value < 0 {
					t.Errorf("malformed 200 body: %s", raw)
				}
			}
			results <- status
		}()
	}
	counts := map[int]int{}
	for i := 0; i < inFlight; i++ {
		counts[<-results]++
	}
	if counts[http.StatusOK]+counts[http.StatusTooManyRequests] != inFlight {
		t.Fatalf("unexpected statuses: %v", counts)
	}
	if counts[http.StatusOK] == 0 || counts[http.StatusTooManyRequests] == 0 {
		t.Fatalf("want both successes and sheds under load, got %v", counts)
	}
	if shed := s.col.Metrics().Counter(mShed).Value(); int(shed) != counts[http.StatusTooManyRequests] {
		t.Errorf("shed counter = %v, responses = %d", shed, counts[http.StatusTooManyRequests])
	}
	waitFor(t, 10*time.Second, "queue drain", func() bool { return s.depth.Load() == 0 })

	// The daemon is still healthy after the storm.
	status, raw := postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: "count(R1)", Synopsis: "main", Variance: "none",
	})
	if status != http.StatusOK {
		t.Fatalf("post-storm estimate: %d %s", status, raw)
	}
}

// TestClientCancellationAborts pins the cancellation path: a client that
// walks away mid-estimate makes the server abort the run between
// sampling rounds — long before its 10s budget — and record the
// cancellation in /metrics.
func TestClientCancellationAborts(t *testing.T) {
	s, base := startServer(t, Config{Concurrency: 1})
	setupHeavyDataset(t, base)

	body, err := json.Marshal(EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
		Mode: "deadline", BudgetMS: 10_000, Seed: 5, Variance: "none",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/estimate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	errs := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			err = fmt.Errorf("request succeeded with %d; want client-side cancellation", resp.StatusCode)
			_ = resp.Body.Close()
		}
		errs <- err
	}()
	waitFor(t, 5*time.Second, "estimate start", func() bool { return s.depth.Load() == 1 })
	cancel()
	if err := <-errs; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error = %v", err)
	}

	// The worker must free up between sampling rounds, within a couple of
	// seconds — not after the 10s budget — and the abort must be counted.
	start := time.Now()
	waitFor(t, 5*time.Second, "worker release", func() bool { return s.depth.Load() == 0 })
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Errorf("worker held for %v after cancellation", elapsed)
	}
	// The handler increments the counter after the worker releases, so
	// poll rather than assert immediately.
	waitFor(t, 5*time.Second, "cancelled counter", func() bool {
		return s.col.Metrics().Counter(mCancelled).Value() >= 1
	})

	// The cancellation shows on the /metrics endpoint.
	status, raw := getBody(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	if !strings.Contains(string(raw), mCancelled) {
		t.Errorf("/metrics lacks %s:\n%s", mCancelled, raw)
	}
}

// TestGracefulShutdownDrains starts several slow estimates, then shuts
// the daemon down mid-flight: every admitted request still gets its 200,
// and the daemon refuses new work while draining.
func TestGracefulShutdownDrains(t *testing.T) {
	cfg := Config{Addr: "127.0.0.1:0", Concurrency: 2, QueueDepth: 8}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	setupHeavyDataset(t, base)

	req := EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main",
		Mode: "deadline", BudgetMS: 400, Seed: 5, Variance: "none",
	}
	const n = 6
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			status, _ := postJSON(t, base+"/v1/estimate", req)
			results <- status
		}()
	}
	waitFor(t, 5*time.Second, "all admitted", func() bool { return s.depth.Load() == n })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	for i := 0; i < n; i++ {
		if status := <-results; status != http.StatusOK {
			t.Errorf("admitted estimate %d: want 200 through the drain, got %d", i, status)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// A post-shutdown request cannot connect.
	if _, err := http.Post(base+"/v1/estimate", "application/json", strings.NewReader("{}")); err == nil {
		t.Error("post-shutdown request succeeded; want connection failure")
	}
}

// TestDrainingRefusesNewEstimates exercises the 503 path directly: with
// the draining flag set, the estimate handler refuses before touching
// the queue.
func TestDrainingRefusesNewEstimates(t *testing.T) {
	s, base := startServer(t, Config{})
	setupDataset(t, base, 2000, 200)
	s.draining.Store(true)
	defer s.draining.Store(false) // let Cleanup's Shutdown run normally

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate",
		strings.NewReader(`{"query":"count(R1)","synopsis":"main"}`))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining estimate: want 503, got %d %s", rec.Code, rec.Body)
	}

	// /healthz reports the drain.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !strings.Contains(rec.Body.String(), `"draining":true`) {
		t.Errorf("healthz = %s", rec.Body)
	}
}

// TestPanicIsolation injects a panicking task straight into the queue:
// the worker answers 500, counts the panic, and stays alive for the
// next request.
func TestPanicIsolation(t *testing.T) {
	s, base := startServer(t, Config{Concurrency: 1})
	setupDataset(t, base, 2000, 200)

	t1 := &task{
		ctx:  context.Background(),
		do:   func(context.Context) (int, any) { panic("injected") },
		done: make(chan struct{}),
	}
	if ok, status, msg := s.admit(t1); !ok {
		t.Fatalf("admit: %d %s", status, msg)
	}
	<-t1.done
	if !t1.panicked || t1.status != http.StatusInternalServerError {
		t.Fatalf("panicked task: panicked=%v status=%d", t1.panicked, t1.status)
	}
	if got := s.col.Metrics().Counter(mPanics).Value(); got < 1 {
		t.Errorf("panic counter = %v, want ≥ 1", got)
	}

	// The worker survived and still serves estimates.
	status, raw := postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: "count(R1)", Synopsis: "main", Variance: "none",
	})
	if status != http.StatusOK {
		t.Fatalf("post-panic estimate: %d %s", status, raw)
	}
}

// TestMetricsEndpoint checks /metrics serves the daemon families next to
// the estimator's after some traffic.
func TestMetricsEndpoint(t *testing.T) {
	_, base := startServer(t, Config{})
	setupDataset(t, base, 2000, 200)
	status, raw := postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 3,
	})
	if status != http.StatusOK {
		t.Fatalf("estimate: %d %s", status, raw)
	}

	// A union whose branches repeat the same join makes the polynomial's
	// terms share a subplan, so the CSE counter must surface on /metrics.
	status, raw = postJSON(t, base+"/v1/estimate", EstimateRequest{
		Query:    "count(union(join(R1, R2, on a = a), join(R1, R2, on a = a)))",
		Synopsis: "main", Seed: 3,
	})
	if status != http.StatusOK {
		t.Fatalf("union estimate: %d %s", status, raw)
	}

	status, raw = getBody(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	text := string(raw)
	for _, family := range []string{
		"relestd_requests_total", "relestd_queue_depth", "relestd_request_seconds",
		"relest_samples_rows_total",
		"relest_cse_subplans_shared_total", "relest_cse_subplan_bytes",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics lacks %s:\n%s", family, text)
		}
	}
}
