package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"testing"

	"relest/internal/estimator"
	"relest/internal/query"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// goldenPath pins the estimate response bytes at a fixed seed. Regenerate
// deliberately with RELESTD_UPDATE_GOLDEN=1 go test ./internal/server
// after an intended estimator or wire-format change.
const goldenPath = "testdata/estimate_count.golden.json"

// libraryResponseBytes computes the same estimate the daemon serves for
// goldenRequest, via direct library calls, and encodes it exactly the
// way writeJSON does. Any divergence between the facade and the library
// — an extra draw, a different iteration order, a lossy float round-trip
// — breaks the byte comparison.
func libraryResponseBytes(t *testing.T) []byte {
	t.Helper()
	rng := sampling.NewSource(7).Rand(0)
	r1, r2 := workload.JoinPair(rng, workload.JoinPairSpec{
		Z1: 0.5, Z2: 1.0, Domain: 200, N1: 2000, N2: 2000,
		Correlation: workload.Independent,
	})
	syn := estimator.NewSynopsis()
	// Sorted-name draw order, exactly like the registry.
	drawRNG := sampling.NewSource(9).Rand(0)
	if err := syn.AddDrawn(r1, 200, drawRNG); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddDrawn(r2, 200, drawRNG); err != nil {
		t.Fatal(err)
	}
	st, err := query.Parse("count(join(R1, R2, on a = a))", synopsisSchemas{syn})
	if err != nil {
		t.Fatal(err)
	}
	est, err := estimator.CountContext(context.Background(), st.Expr, syn, estimator.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp := EstimateResponse{
		Query:    "count(join(R1, R2, on a = a))",
		Synopsis: "main",
		Mode:     "plain",
		Estimate: toResult(est),
		SamplesConsumed: map[string]int{
			"R1": 200,
			"R2": 200,
		},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEstimateGoldenByteIdentity pins the facade's determinism contract:
// the response body at a fixed seed is byte-identical across worker
// counts, byte-identical to a direct library call, and byte-identical to
// the committed golden file.
func TestEstimateGoldenByteIdentity(t *testing.T) {
	_, base := startServer(t, Config{})
	setupDataset(t, base, 2000, 200)

	var first []byte
	for _, workers := range []int{1, 4} {
		status, raw := postJSON(t, base+"/v1/estimate", EstimateRequest{
			Query:    "count(join(R1, R2, on a = a))",
			Synopsis: "main",
			Seed:     3,
			Workers:  workers,
		})
		if status != http.StatusOK {
			t.Fatalf("workers=%d: %d %s", workers, status, raw)
		}
		if first == nil {
			first = raw
		} else if !bytes.Equal(first, raw) {
			t.Fatalf("workers=%d response differs from workers=1:\n%s\nvs\n%s", workers, raw, first)
		}
	}

	lib := libraryResponseBytes(t)
	if !bytes.Equal(first, lib) {
		t.Errorf("service response differs from direct library call:\nservice: %s\nlibrary: %s", first, lib)
	}

	if os.Getenv("RELESTD_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (set RELESTD_UPDATE_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("response differs from %s:\ngot:  %s\nwant: %s", goldenPath, first, want)
	}
}
