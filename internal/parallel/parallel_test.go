package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]atomic.Int64, n)
		For(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForSmallN(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	if ran {
		t.Fatal("For(0, ...) ran a task")
	}
	For(1, 4, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("For(1, ...) did not run task 0")
	}
}

func TestForErrReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForErr(100, workers, func(i int) error {
			if i == 97 || i == 13 || i == 40 {
				return fmt.Errorf("task %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 13" {
			t.Fatalf("workers=%d: got %v, want task 13", workers, err)
		}
	}
	if err := ForErr(10, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	want := errors.New("boom")
	if err := ForErr(1, 1, func(int) error { return want }); err != want {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestResolveAndSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d", got)
	}
	SetWorkers(3)
	if got := Resolve(0); got != 3 {
		t.Fatalf("Resolve(0) with default 3 = %d", got)
	}
	SetWorkers(0)
	if got := Resolve(0); got < 1 {
		t.Fatalf("Resolve(0) with GOMAXPROCS default = %d", got)
	}
}
