// Package parallel provides the worker-pool primitives behind the
// estimation engine: bounded fan-out over an index space with deterministic
// error selection.
//
// Determinism contract: these primitives schedule tasks in an arbitrary
// order, so callers must write each task's result into an index-addressed
// slot and reduce the slots in index order. Reductions structured that way
// produce bit-identical floats for every worker count, which is what lets
// Options.Workers vary without perturbing estimates.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"relest/internal/obs"
)

// defaultWorkers overrides the GOMAXPROCS default when positive.
var defaultWorkers atomic.Int64

// Workers returns the default worker count: the value set by SetWorkers, or
// GOMAXPROCS when none is set.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the package default used when a caller requests 0
// workers (the -workers CLI flag). Passing n <= 0 restores the GOMAXPROCS
// default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve maps a requested worker count to an effective one: positive
// requests are honored as-is, zero (and negative) requests resolve to the
// package default.
func Resolve(requested int) int {
	if requested > 0 {
		return requested
	}
	return Workers()
}

// For runs fn(i) for every i in [0, n), using at most `workers` goroutines
// (0 resolves to the package default). Tasks are claimed from a shared
// counter, so completion order is arbitrary; see the package determinism
// contract.
func For(n, workers int, fn func(i int)) {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr runs fn(i) for every i in [0, n) like For and returns the error of
// the lowest-indexed failing task, so the reported error does not depend on
// scheduling. All tasks run even when an early one fails (errors are the
// exceptional path; the common case needs every result anyway).
func ForErr(n, workers int, fn func(i int) error) error {
	return ForErrRec(n, workers, nil, fn)
}

// Pool metric names. Queue depth is the number of unclaimed tasks of the
// most recent fan-out; utilization is busy_seconds / (elapsed_seconds ×
// workers) aggregated over fan-outs.
const (
	mQueueDepth   = "relest_pool_queue_depth"
	mPoolWorkers  = "relest_pool_workers"
	mTasksTotal   = "relest_pool_tasks_total"
	mTaskSeconds  = "relest_pool_task_seconds"
	mBusySeconds  = "relest_pool_busy_seconds_total"
	mElapsedTotal = "relest_pool_elapsed_seconds_total"
)

// ForRec is For with instrumentation: when rec is live, the fan-out
// reports queue depth, per-task latency, and per-worker busy time.
// Recording never alters scheduling or results — the task order and
// reduction contract are identical to For — and with rec nil or Nop this
// is exactly For (no clock reads).
func ForRec(n, workers int, rec obs.Recorder, fn func(i int)) {
	if !obs.Live(rec) {
		For(n, workers, fn)
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	start := time.Now()
	rec.Set(mPoolWorkers, float64(workers))
	rec.Set(mQueueDepth, float64(n))
	task := func(i int) {
		t0 := time.Now()
		fn(i)
		rec.Observe(mTaskSeconds, time.Since(t0).Seconds())
		rec.Add(mTasksTotal, 1)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			rec.Set(mQueueDepth, float64(n-i-1))
			task(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				w0 := time.Now()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						break
					}
					rec.Set(mQueueDepth, float64(max(n-i-1, 0)))
					task(i)
				}
				rec.Add(mBusySeconds, time.Since(w0).Seconds())
			}()
		}
		wg.Wait()
	}
	rec.Set(mQueueDepth, 0)
	elapsed := time.Since(start).Seconds()
	rec.Add(mElapsedTotal, elapsed)
	if workers <= 1 {
		rec.Add(mBusySeconds, elapsed)
	}
}

// ForErrRec is ForErr with ForRec's instrumentation.
func ForErrRec(n, workers int, rec obs.Recorder, fn func(i int) error) error {
	errs := make([]error, n)
	ForRec(n, workers, rec, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
