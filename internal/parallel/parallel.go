// Package parallel provides the worker-pool primitives behind the
// estimation engine: bounded fan-out over an index space with deterministic
// error selection.
//
// Determinism contract: these primitives schedule tasks in an arbitrary
// order, so callers must write each task's result into an index-addressed
// slot and reduce the slots in index order. Reductions structured that way
// produce bit-identical floats for every worker count, which is what lets
// Options.Workers vary without perturbing estimates.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the GOMAXPROCS default when positive.
var defaultWorkers atomic.Int64

// Workers returns the default worker count: the value set by SetWorkers, or
// GOMAXPROCS when none is set.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the package default used when a caller requests 0
// workers (the -workers CLI flag). Passing n <= 0 restores the GOMAXPROCS
// default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve maps a requested worker count to an effective one: positive
// requests are honored as-is, zero (and negative) requests resolve to the
// package default.
func Resolve(requested int) int {
	if requested > 0 {
		return requested
	}
	return Workers()
}

// For runs fn(i) for every i in [0, n), using at most `workers` goroutines
// (0 resolves to the package default). Tasks are claimed from a shared
// counter, so completion order is arbitrary; see the package determinism
// contract.
func For(n, workers int, fn func(i int)) {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr runs fn(i) for every i in [0, n) like For and returns the error of
// the lowest-indexed failing task, so the reported error does not depend on
// scheduling. All tasks run even when an early one fails (errors are the
// exceptional path; the common case needs every result anyway).
func ForErr(n, workers int, fn func(i int) error) error {
	errs := make([]error, n)
	For(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
