// Package workload generates the synthetic datasets and streams the
// experiments run on: Zipf-skewed join attributes with controlled
// correlation and smoothness, clustered multi-region data in the style of
// Vitter–Wang (as extended by Dobra et al. for correlated join attributes),
// an employees/departments scenario for the examples, and insert/delete
// streams for the incremental synopsis.
//
// All generators are deterministic given their *rand.Rand, and all emit
// relations whose tuples carry a unique id column, so the outputs satisfy
// both the set-semantics contract of the algebra's set operations and the
// identity contract of the incremental synopsis.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"relest/internal/relation"
)

// ZipfFrequencies returns per-rank tuple counts for a Zipf(z) distribution
// over domain ranks 1..domain, scaled to sum exactly to total. z = 0 is
// uniform; larger z is more skewed. Largest-remainder rounding preserves
// the total exactly.
func ZipfFrequencies(z float64, domain, total int) []int {
	if domain < 1 {
		panic(fmt.Sprintf("workload: zipf domain %d < 1", domain))
	}
	if total < 0 {
		panic(fmt.Sprintf("workload: zipf total %d < 0", total))
	}
	weights := make([]float64, domain)
	var sum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), z)
		sum += weights[i]
	}
	counts := make([]int, domain)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, domain)
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		counts[i] = int(math.Floor(exact))
		assigned += counts[i]
		rems[i] = rem{idx: i, frac: exact - math.Floor(exact)}
	}
	// Distribute the remainder by largest fractional part; ranks are
	// already sorted by weight so ties resolve toward the head.
	for assigned < total {
		best := 0
		for j := 1; j < len(rems); j++ {
			if rems[j].frac > rems[best].frac {
				best = j
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return counts
}

// Mapping controls how frequency ranks map onto attribute values — the
// knob that makes a frequency function "smooth" (orderly) or "rough"
// (random) in value space.
type Mapping int

// Rank-to-value mappings.
const (
	// MapRandom scatters ranks over values with a random permutation.
	MapRandom Mapping = iota
	// MapSmooth assigns rank i to value i: frequency decreases smoothly
	// in value space.
	MapSmooth
)

// Correlation controls the relationship between the rank→value mappings of
// a pair of join attributes.
type Correlation int

// Join-attribute correlations.
const (
	// Positive gives both relations the same mapping: frequent values in
	// one are frequent in the other (the sketch-friendly regime).
	Positive Correlation = iota
	// Independent gives each relation its own random mapping.
	Independent
	// Negative inverts the second relation's ranks: its most frequent
	// value is the first relation's least frequent.
	Negative
)

// String names the correlation.
func (c Correlation) String() string {
	switch c {
	case Positive:
		return "positive"
	case Independent:
		return "independent"
	case Negative:
		return "negative"
	default:
		return fmt.Sprintf("Correlation(%d)", int(c))
	}
}

// JoinSchema is the two-column schema every generated relation uses: the
// join attribute a and a unique tuple id.
func JoinSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "id", Kind: relation.KindInt},
	)
}

// fromCounts materializes a relation with counts[rank] tuples of value
// valueOf(rank), ids unique, rows shuffled.
func fromCounts(rng *rand.Rand, name string, counts []int, valueOf func(rank int) int64) *relation.Relation {
	r := relation.New(name, JoinSchema())
	id := int64(0)
	for rank, c := range counts {
		v := valueOf(rank)
		for k := 0; k < c; k++ {
			r.MustAppend(relation.Tuple{relation.Int(v), relation.Int(id)})
			id++
		}
	}
	// Shuffle row order so samples-by-position carry no structure.
	perm := rng.Perm(r.Len())
	shuffled := r.Subset(name, perm)
	return shuffled
}

// ZipfRelation generates one relation of n tuples whose join attribute a
// follows Zipf(z) over the given domain with the given mapping.
func ZipfRelation(rng *rand.Rand, name string, z float64, domain, n int, m Mapping) *relation.Relation {
	counts := ZipfFrequencies(z, domain, n)
	var valueOf func(int) int64
	switch m {
	case MapSmooth:
		valueOf = func(rank int) int64 { return int64(rank) }
	default:
		perm := rng.Perm(domain)
		valueOf = func(rank int) int64 { return int64(perm[rank]) }
	}
	return fromCounts(rng, name, counts, valueOf)
}

// JoinPairSpec describes a correlated pair of Zipf relations sharing a join
// attribute domain.
type JoinPairSpec struct {
	Z1, Z2      float64     // skew of each relation
	Domain      int         // join attribute domain size
	N1, N2      int         // relation cardinalities
	Correlation Correlation // mapping relationship
	Smooth      bool        // orderly rank→value mapping (overrides Correlation's mapping shape, preserving its relationship)
	PermuteFrac float64     // fraction of the second mapping randomly permuted (weakens the correlation)
}

// JoinPair generates two relations R1, R2 according to the spec.
func JoinPair(rng *rand.Rand, spec JoinPairSpec) (*relation.Relation, *relation.Relation) {
	if spec.Domain < 1 {
		panic("workload: JoinPair domain < 1")
	}
	c1 := ZipfFrequencies(spec.Z1, spec.Domain, spec.N1)
	c2 := ZipfFrequencies(spec.Z2, spec.Domain, spec.N2)

	// First relation's mapping.
	var map1 []int
	if spec.Smooth {
		map1 = identity(spec.Domain)
	} else {
		map1 = rng.Perm(spec.Domain)
	}
	// Second relation's mapping per the correlation.
	var map2 []int
	switch spec.Correlation {
	case Positive:
		map2 = append([]int(nil), map1...)
	case Negative:
		map2 = make([]int, spec.Domain)
		for i := range map2 {
			map2[i] = map1[spec.Domain-1-i]
		}
	default: // Independent
		if spec.Smooth {
			// An independent smooth mapping is its own random re-ordering
			// of ranks over values; keep value space orderly by shifting.
			map2 = rng.Perm(spec.Domain)
		} else {
			map2 = rng.Perm(spec.Domain)
		}
	}
	// Optionally weaken the relationship by permuting a fraction of map2.
	if spec.PermuteFrac > 0 {
		k := int(spec.PermuteFrac * float64(spec.Domain))
		idx := rng.Perm(spec.Domain)[:k]
		shuffled := append([]int(nil), idx...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		orig := append([]int(nil), map2...)
		for i, src := range idx {
			map2[src] = orig[shuffled[i]]
		}
	}
	r1 := fromCounts(rng, "R1", c1, func(rank int) int64 { return int64(map1[rank]) })
	r2 := fromCounts(rng, "R2", c2, func(rank int) int64 { return int64(map2[rank]) })
	return r1, r2
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// AttributeValues extracts a column as int64s — the input format the
// histogram and sketch baselines consume.
func AttributeValues(r *relation.Relation, col string) []int64 {
	pos := r.Schema().MustColumnIndex(col)
	out := make([]int64, 0, r.Len())
	r.EachRow(func(i int, row relation.Row) bool {
		out = append(out, row.Value(pos).Int64())
		return true
	})
	return out
}

// ExactJoinSize computes Σ_v f₁(v)·f₂(v) between two int columns directly,
// without materializing the join — ground truth for the baselines.
func ExactJoinSize(r1 *relation.Relation, col1 string, r2 *relation.Relation, col2 string) float64 {
	f1 := map[int64]int64{}
	p1 := r1.Schema().MustColumnIndex(col1)
	r1.EachRow(func(i int, row relation.Row) bool {
		f1[row.Value(p1).Int64()]++
		return true
	})
	p2 := r2.Schema().MustColumnIndex(col2)
	var total float64
	r2.EachRow(func(i int, row relation.Row) bool {
		total += float64(f1[row.Value(p2).Int64()])
		return true
	})
	return total
}
