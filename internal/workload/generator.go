package workload

import (
	"math/rand"
	"time"
)

// Scenario generators for the adversarial load harness. Every generator
// is a pure function of its spec (and, where randomness is involved, an
// explicit *rand.Rand), so a pinned seed reproduces the exact request
// schedule a soak run executed — the harness's analogue of the
// estimator's determinism contract.

// BurstSpec shapes a bursty arrival envelope: each cycle of Period ticks
// opens with Duty ticks at Peak trials per tick and relaxes to Base for
// the rest. The envelope is deterministic — burstiness comes from the
// shape, not from jitter — so a failing soak run can be replayed tick
// for tick.
type BurstSpec struct {
	// Base is the trials per quiet tick (default 1).
	Base int
	// Peak is the trials per burst tick (default 8).
	Peak int
	// Period is the cycle length in ticks (default 8).
	Period int
	// Duty is how many ticks at the head of each cycle burst (default 2).
	Duty int
}

func (s BurstSpec) withDefaults() BurstSpec {
	if s.Base <= 0 {
		s.Base = 1
	}
	if s.Peak <= 0 {
		s.Peak = 8
	}
	if s.Period <= 0 {
		s.Period = 8
	}
	if s.Duty <= 0 {
		s.Duty = 2
	}
	if s.Duty > s.Period {
		s.Duty = s.Period
	}
	return s
}

// Envelope returns the per-tick trial counts for the given horizon.
func (s BurstSpec) Envelope(ticks int) []int {
	s = s.withDefaults()
	env := make([]int, ticks)
	for i := range env {
		if i%s.Period < s.Duty {
			env[i] = s.Peak
		} else {
			env[i] = s.Base
		}
	}
	return env
}

// PickSpec draws Zipf-skewed key indexes: key 0 is the hottest, with
// frequency ∝ 1/(rank+1)^Z over Keys ranks. Z = 0 is uniform; large Z
// concentrates almost all picks on key 0 (the hot-key scenario).
type PickSpec struct {
	Keys int
	Z    float64
}

// Picks returns n key indexes drawn from the spec's Zipf weights.
func (s PickSpec) Picks(rng *rand.Rand, n int) []int {
	keys := s.Keys
	if keys < 1 {
		keys = 1
	}
	// Reuse the integer Zipf weights the dataset generators use, with a
	// resolution high enough that every key keeps nonzero mass at Z ≤ 3.
	weights := ZipfFrequencies(s.Z, keys, 1<<16)
	cum := make([]int, len(weights))
	total := 0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	out := make([]int, n)
	for i := range out {
		u := rng.Intn(total)
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] > u {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out[i] = lo
	}
	return out
}

// CancelPlan is one trial's cancellation decision: whether the client
// abandons the request, and after how long.
type CancelPlan struct {
	Cancel bool
	After  time.Duration
}

// CancelSpec shapes a cancellation storm: a fraction of trials are
// abandoned mid-flight after a delay uniform in [MinAfter, MaxAfter].
// The schedule is drawn up front so the storm's shape is pinned by the
// seed; only the server's reaction happens in real time.
type CancelSpec struct {
	N        int
	Frac     float64
	MinAfter time.Duration
	MaxAfter time.Duration
}

// Schedule returns one CancelPlan per trial.
func (s CancelSpec) Schedule(rng *rand.Rand) []CancelPlan {
	if s.MaxAfter < s.MinAfter {
		s.MaxAfter = s.MinAfter
	}
	plans := make([]CancelPlan, s.N)
	for i := range plans {
		if rng.Float64() >= s.Frac {
			continue
		}
		after := s.MinAfter
		if span := s.MaxAfter - s.MinAfter; span > 0 {
			after += time.Duration(rng.Int63n(int64(span)))
		}
		plans[i] = CancelPlan{Cancel: true, After: after}
	}
	return plans
}
