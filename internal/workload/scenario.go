package workload

import (
	"math/rand"

	"relest/internal/relation"
)

// The employees/departments scenario: a small realistic schema used by the
// examples and the CLI's bundled demo data. Age and salary follow the
// rounded, hump-shaped marginals real HR data exhibits, and department
// sizes are skewed.

// EmployeeSchema returns the schema of the employees relation.
func EmployeeSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "emp_id", Kind: relation.KindInt},
		relation.Column{Name: "dept_id", Kind: relation.KindInt},
		relation.Column{Name: "age", Kind: relation.KindInt},
		relation.Column{Name: "salary", Kind: relation.KindInt},
	)
}

// DepartmentSchema returns the schema of the departments relation.
func DepartmentSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "dept_id", Kind: relation.KindInt},
		relation.Column{Name: "budget", Kind: relation.KindInt},
		relation.Column{Name: "site", Kind: relation.KindInt},
	)
}

// Company generates an employees relation of n rows over d departments and
// the matching departments relation. Department sizes are Zipf(0.8); ages
// cluster around 40 ± 10; salaries correlate loosely with age.
func Company(rng *rand.Rand, n, d int) (employees, departments *relation.Relation) {
	employees = relation.New("employees", EmployeeSchema())
	departments = relation.New("departments", DepartmentSchema())

	deptOf := make([]int, 0, n)
	for dept, c := range ZipfFrequencies(0.8, d, n) {
		for k := 0; k < c; k++ {
			deptOf = append(deptOf, dept)
		}
	}
	perm := rng.Perm(len(deptOf))
	for i := 0; i < n; i++ {
		dept := deptOf[perm[i]]
		age := int64(40 + rng.NormFloat64()*10)
		if age < 18 {
			age = 18
		}
		if age > 67 {
			age = 67
		}
		salary := int64(30000 + (age-18)*900 + int64(rng.NormFloat64()*8000))
		if salary < 22000 {
			salary = 22000
		}
		employees.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(dept)),
			relation.Int(age),
			relation.Int(salary),
		})
	}
	for dept := 0; dept < d; dept++ {
		departments.MustAppend(relation.Tuple{
			relation.Int(int64(dept)),
			relation.Int(int64(100000 + rng.Intn(900000))),
			relation.Int(int64(dept % 5)),
		})
	}
	return employees, departments
}

// Op is one event of an insert/delete stream.
type Op struct {
	Rel    string
	Delete bool
	Tuple  relation.Tuple
}

// StreamSpec configures an insert/delete stream over one relation of
// JoinSchema tuples.
type StreamSpec struct {
	Rel        string
	Ops        int     // total operations
	DeleteFrac float64 // fraction of operations that delete a live tuple
	Z          float64 // skew of the join attribute
	Domain     int     // join attribute domain
}

// Stream generates a well-formed insert/delete sequence: deletions only
// target tuples currently live, tuples are value-unique (JoinSchema ids),
// and the join attribute of inserted tuples is Zipf(Z)-distributed.
func Stream(rng *rand.Rand, spec StreamSpec) []Op {
	if spec.Domain < 1 {
		spec.Domain = 1000
	}
	weights := ZipfFrequencies(spec.Z, spec.Domain, 1<<16)
	cum := make([]int, len(weights))
	s := 0
	for i, w := range weights {
		s += w
		cum[i] = s
	}
	drawValue := func() int64 {
		u := rng.Intn(s)
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] > u {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return int64(lo)
	}
	var ops []Op
	var live []relation.Tuple
	nextID := int64(0)
	for len(ops) < spec.Ops {
		if len(live) > 0 && rng.Float64() < spec.DeleteFrac {
			i := rng.Intn(len(live))
			ops = append(ops, Op{Rel: spec.Rel, Delete: true, Tuple: live[i]})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		t := relation.Tuple{relation.Int(drawValue()), relation.Int(nextID)}
		nextID++
		live = append(live, t)
		ops = append(ops, Op{Rel: spec.Rel, Tuple: t})
	}
	return ops
}

// Materialize applies a stream's surviving inserts to a fresh relation —
// the ground-truth population for stream experiments.
func Materialize(name string, ops []Op) *relation.Relation {
	liveSet := map[string]relation.Tuple{}
	for _, op := range ops {
		k := op.Tuple.Key(nil)
		if op.Delete {
			delete(liveSet, k)
		} else {
			liveSet[k] = op.Tuple
		}
	}
	r := relation.New(name, JoinSchema())
	for _, t := range liveSet {
		r.MustAppend(t)
	}
	return r
}
