package workload

import (
	"fmt"
	"math/rand"

	"relest/internal/relation"
)

// ClusterSpec describes clustered, positively correlated join-attribute
// data in the style of the Vitter–Wang generator as extended by Dobra et
// al.: tuples concentrate in a small number of regions of the attribute
// domain, region weights are Zipf(ZInter)-skewed, values within a region
// are Zipf(ZIntra)-distributed, and the second relation's regions are the
// first's with their centers perturbed — clustered and correlated, but not
// perfectly so.
type ClusterSpec struct {
	Regions int     // number of clusters (default 10)
	Domain  int     // attribute domain size (default 1024)
	WidthLo int     // minimum region width (default Domain/64, ≥ 1)
	WidthHi int     // maximum region width (default Domain/16)
	ZInter  float64 // skew across regions (default 1.0)
	ZIntra  float64 // skew within a region (default 0.0 = uniform)
	Perturb float64 // second relation's center shift as a fraction of region width (default 0.5)
	N1, N2  int     // relation cardinalities
}

func (s ClusterSpec) withDefaults() ClusterSpec {
	if s.Regions <= 0 {
		s.Regions = 10
	}
	if s.Domain <= 0 {
		s.Domain = 1024
	}
	if s.WidthLo <= 0 {
		s.WidthLo = max(1, s.Domain/64)
	}
	if s.WidthHi < s.WidthLo {
		s.WidthHi = max(s.WidthLo, s.Domain/16)
	}
	//lint:ignore floateq unset-option sentinel: the zero value marks "use the default", exact by construction
	if s.ZInter == 0 {
		s.ZInter = 1.0
	}
	//lint:ignore floateq unset-option sentinel: the zero value marks "use the default", exact by construction
	if s.Perturb == 0 {
		s.Perturb = 0.5
	}
	return s
}

type region struct {
	lo, hi int // inclusive value interval
}

// ClusteredPair generates the correlated clustered pair (R1, R2).
func ClusteredPair(rng *rand.Rand, spec ClusterSpec) (*relation.Relation, *relation.Relation) {
	spec = spec.withDefaults()
	if spec.N1 < 0 || spec.N2 < 0 {
		panic(fmt.Sprintf("workload: negative cardinalities %d/%d", spec.N1, spec.N2))
	}
	// Regions of R1: random centers and widths.
	regs1 := make([]region, spec.Regions)
	regs2 := make([]region, spec.Regions)
	for i := range regs1 {
		w := spec.WidthLo
		if spec.WidthHi > spec.WidthLo {
			w += rng.Intn(spec.WidthHi - spec.WidthLo + 1)
		}
		c := rng.Intn(spec.Domain)
		regs1[i] = clampRegion(c, w, spec.Domain)
		// R2's region: same width, center shifted by ±Perturb·w.
		shift := int((rng.Float64()*2 - 1) * spec.Perturb * float64(w))
		regs2[i] = clampRegion(c+shift, w, spec.Domain)
	}
	// Region weights shared by both relations (the correlation).
	w1 := ZipfFrequencies(spec.ZInter, spec.Regions, spec.N1)
	w2 := ZipfFrequencies(spec.ZInter, spec.Regions, spec.N2)

	build := func(name string, regs []region, perRegion []int) *relation.Relation {
		r := relation.New(name, JoinSchema())
		id := int64(0)
		for ri, cnt := range perRegion {
			reg := regs[ri]
			width := reg.hi - reg.lo + 1
			counts := ZipfFrequencies(spec.ZIntra, width, cnt)
			// Random rank→offset mapping within the region.
			perm := rng.Perm(width)
			for rank, c := range counts {
				v := int64(reg.lo + perm[rank])
				for k := 0; k < c; k++ {
					r.MustAppend(relation.Tuple{relation.Int(v), relation.Int(id)})
					id++
				}
			}
		}
		return r.Subset(name, rng.Perm(r.Len()))
	}
	return build("R1", regs1, w1), build("R2", regs2, w2)
}

func clampRegion(center, width, domain int) region {
	lo := center - width/2
	if lo < 0 {
		lo = 0
	}
	hi := lo + width - 1
	if hi >= domain {
		hi = domain - 1
		lo = max(0, hi-width+1)
	}
	return region{lo: lo, hi: hi}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
