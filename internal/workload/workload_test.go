package workload

import (
	"math"
	"math/rand"
	"testing"

	"relest/internal/relation"
)

func TestZipfFrequencies(t *testing.T) {
	counts := ZipfFrequencies(1.0, 10, 1000)
	if len(counts) != 10 {
		t.Fatalf("len %d", len(counts))
	}
	sum := 0
	for i, c := range counts {
		sum += c
		if i > 0 && c > counts[i-1] {
			t.Errorf("counts not non-increasing at %d: %v", i, counts)
		}
	}
	if sum != 1000 {
		t.Errorf("sum %d", sum)
	}
	// z=0 is uniform.
	u := ZipfFrequencies(0, 4, 100)
	for _, c := range u {
		if c != 25 {
			t.Errorf("uniform counts %v", u)
		}
	}
	// Higher skew concentrates mass at the head.
	s05 := ZipfFrequencies(0.5, 100, 10000)
	s15 := ZipfFrequencies(1.5, 100, 10000)
	if s15[0] <= s05[0] {
		t.Errorf("skew ordering: head(z=1.5)=%d vs head(z=0.5)=%d", s15[0], s05[0])
	}
	// Degenerate total.
	z := ZipfFrequencies(1, 5, 0)
	for _, c := range z {
		if c != 0 {
			t.Errorf("zero total gave %v", z)
		}
	}
}

func TestZipfFrequenciesPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ZipfFrequencies(1, 0, 10) },
		func() { ZipfFrequencies(1, 5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestZipfRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := ZipfRelation(rng, "R", 1.0, 50, 2000, MapRandom)
	if r.Len() != 2000 {
		t.Fatalf("len %d", r.Len())
	}
	if !r.IsSet() {
		t.Error("generated relation has duplicate tuples (ids should be unique)")
	}
	// All values within the domain.
	pos := r.Schema().MustColumnIndex("a")
	r.Each(func(i int, tp relation.Tuple) bool {
		v := tp[pos].Int64()
		if v < 0 || v >= 50 {
			t.Fatalf("value %d outside domain", v)
		}
		return true
	})
	// Smooth mapping: most frequent value is 0.
	r2 := ZipfRelation(rng, "R", 2.0, 50, 2000, MapSmooth)
	freq := map[int64]int{}
	r2.Each(func(i int, tp relation.Tuple) bool {
		freq[tp[pos].Int64()]++
		return true
	})
	best, bestC := int64(-1), -1
	for v, c := range freq {
		if c > bestC {
			best, bestC = v, c
		}
	}
	if best != 0 {
		t.Errorf("smooth mapping: most frequent value %d, want 0", best)
	}
}

func TestJoinPairCorrelations(t *testing.T) {
	const domain, n = 100, 20000
	joint := func(corr Correlation) float64 {
		rng := rand.New(rand.NewSource(7))
		r1, r2 := JoinPair(rng, JoinPairSpec{
			Z1: 1.0, Z2: 1.0, Domain: domain, N1: n, N2: n, Correlation: corr,
		})
		return ExactJoinSize(r1, "a", r2, "a")
	}
	pos := joint(Positive)
	ind := joint(Independent)
	neg := joint(Negative)
	// Positive correlation aligns heavy hitters: much larger join than
	// independent; negative anti-aligns: smaller than independent.
	if !(pos > ind && ind > neg) {
		t.Errorf("join sizes pos=%v ind=%v neg=%v violate ordering", pos, ind, neg)
	}
}

func TestJoinPairPermuteWeakens(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	strong1, strong2 := JoinPair(rng, JoinPairSpec{Z1: 0.5, Z2: 1.0, Domain: 200, N1: 30000, N2: 30000, Correlation: Positive})
	weak1, weak2 := JoinPair(rng, JoinPairSpec{Z1: 0.5, Z2: 1.0, Domain: 200, N1: 30000, N2: 30000, Correlation: Positive, PermuteFrac: 0.5})
	strong := ExactJoinSize(strong1, "a", strong2, "a")
	weak := ExactJoinSize(weak1, "a", weak2, "a")
	if weak >= strong {
		t.Errorf("permuted pair join %v not weaker than strict positive %v", weak, strong)
	}
}

func TestClusteredPair(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := ClusterSpec{Regions: 10, Domain: 1024, N1: 5000, N2: 4000}
	r1, r2 := ClusteredPair(rng, spec)
	if r1.Len() != 5000 || r2.Len() != 4000 {
		t.Fatalf("sizes %d/%d", r1.Len(), r2.Len())
	}
	if !r1.IsSet() || !r2.IsSet() {
		t.Error("clustered relations must be duplicate-free")
	}
	// Clustering: the number of distinct values should be well below the
	// domain (tuples concentrate in ~10 regions of ≤ domain/16 width).
	distinct := map[int64]struct{}{}
	pos := r1.Schema().MustColumnIndex("a")
	r1.Each(func(i int, tp relation.Tuple) bool {
		v := tp[pos].Int64()
		if v < 0 || v >= 1024 {
			t.Fatalf("value %d outside domain", v)
		}
		distinct[v] = struct{}{}
		return true
	})
	if len(distinct) > 700 {
		t.Errorf("%d distinct values: data does not look clustered", len(distinct))
	}
	// Correlation: the pair should join much more than independent data
	// with the same marginal density would.
	j := ExactJoinSize(r1, "a", r2, "a")
	indep := float64(r1.Len()) * float64(r2.Len()) / 1024
	if j < indep {
		t.Errorf("clustered join %v below independence baseline %v", j, indep)
	}
}

func TestCompany(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	emp, dept := Company(rng, 3000, 12)
	if emp.Len() != 3000 || dept.Len() != 12 {
		t.Fatalf("sizes %d/%d", emp.Len(), dept.Len())
	}
	agePos := emp.Schema().MustColumnIndex("age")
	deptPos := emp.Schema().MustColumnIndex("dept_id")
	emp.Each(func(i int, tp relation.Tuple) bool {
		age := tp[agePos].Int64()
		if age < 18 || age > 67 {
			t.Fatalf("age %d out of range", age)
		}
		d := tp[deptPos].Int64()
		if d < 0 || d >= 12 {
			t.Fatalf("dept %d out of range", d)
		}
		return true
	})
	if !emp.IsSet() || !dept.IsSet() {
		t.Error("company relations must be duplicate-free")
	}
}

func TestStreamWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ops := Stream(rng, StreamSpec{Rel: "R", Ops: 5000, DeleteFrac: 0.3, Z: 1.0, Domain: 500})
	if len(ops) != 5000 {
		t.Fatalf("ops %d", len(ops))
	}
	live := map[string]bool{}
	deletes := 0
	for i, op := range ops {
		k := op.Tuple.Key(nil)
		if op.Delete {
			if !live[k] {
				t.Fatalf("op %d deletes a tuple that is not live", i)
			}
			delete(live, k)
			deletes++
		} else {
			if live[k] {
				t.Fatalf("op %d re-inserts a live tuple", i)
			}
			live[k] = true
		}
	}
	if deletes == 0 {
		t.Error("stream produced no deletions")
	}
	frac := float64(deletes) / float64(len(ops))
	if math.Abs(frac-0.3) > 0.05 {
		t.Errorf("delete fraction %.3f far from 0.3", frac)
	}
	// Materialize agrees with replay.
	mat := Materialize("R", ops)
	if mat.Len() != len(live) {
		t.Errorf("materialized %d, live %d", mat.Len(), len(live))
	}
}

func TestAttributeValues(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	r := ZipfRelation(rng, "R", 0, 10, 100, MapSmooth)
	vals := AttributeValues(r, "a")
	if len(vals) != 100 {
		t.Fatalf("len %d", len(vals))
	}
	for _, v := range vals {
		if v < 0 || v >= 10 {
			t.Fatalf("value %d", v)
		}
	}
}

func TestExactJoinSizeAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r1 := ZipfRelation(rng, "R1", 1, 20, 300, MapRandom)
	r2 := ZipfRelation(rng, "R2", 0.5, 20, 200, MapRandom)
	want := 0.0
	p1 := r1.Schema().MustColumnIndex("a")
	p2 := r2.Schema().MustColumnIndex("a")
	r1.Each(func(i int, t1 relation.Tuple) bool {
		r2.Each(func(j int, t2 relation.Tuple) bool {
			if t1[p1].Equal(t2[p2]) {
				want++
			}
			return true
		})
		return true
	})
	if got := ExactJoinSize(r1, "a", r2, "a"); got != want {
		t.Errorf("ExactJoinSize %v, brute force %v", got, want)
	}
}
