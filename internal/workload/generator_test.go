package workload

import (
	"math/rand"
	"testing"
	"time"
)

// TestBurstEnvelopeShape pins the bursty arrival generator: the envelope
// is exactly periodic — Duty peak ticks then quiet ticks, every Period —
// and deterministic (no jitter to replay).
func TestBurstEnvelopeShape(t *testing.T) {
	for _, tc := range []struct {
		name      string
		spec      BurstSpec
		ticks     int
		wantTotal int
	}{
		{"defaults", BurstSpec{}, 16, 2*8 + 6 + 2*8 + 6},
		{"narrow-spike", BurstSpec{Base: 1, Peak: 10, Period: 5, Duty: 1}, 10, 10 + 4 + 10 + 4},
		{"square-wave", BurstSpec{Base: 2, Peak: 6, Period: 4, Duty: 2}, 8, 2*6 + 2*2 + 2*6 + 2*2},
		{"duty-clamped", BurstSpec{Base: 1, Peak: 3, Period: 2, Duty: 9}, 4, 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := tc.spec.Envelope(tc.ticks)
			if len(env) != tc.ticks {
				t.Fatalf("len(env) = %d, want %d", len(env), tc.ticks)
			}
			spec := tc.spec.withDefaults()
			total := 0
			for i, c := range env {
				total += c
				want := spec.Base
				if i%spec.Period < spec.Duty {
					want = spec.Peak
				}
				if c != want {
					t.Errorf("tick %d = %d, want %d", i, c, want)
				}
			}
			if total != tc.wantTotal {
				t.Errorf("total trials = %d, want %d", total, tc.wantTotal)
			}
		})
	}
}

// TestPickSpecSkew pins the Zipf key picker's distribution shape: rank 0
// is the hottest, hotness decreases with rank, and raising Z concentrates
// mass on the head — the knob the hot-key scenario turns.
func TestPickSpecSkew(t *testing.T) {
	const n = 20_000
	counts := func(z float64, keys int) []int {
		picks := PickSpec{Keys: keys, Z: z}.Picks(rand.New(rand.NewSource(1)), n)
		c := make([]int, keys)
		for _, k := range picks {
			if k < 0 || k >= keys {
				t.Fatalf("pick %d outside [0, %d)", k, keys)
			}
			c[k]++
		}
		return c
	}

	for _, tc := range []struct {
		name             string
		z                float64
		keys             int
		minHead, maxHead float64 // share of picks on key 0
	}{
		{"uniform", 0, 8, 0.10, 0.15},    // 1/8 = 12.5%
		{"skewed", 1, 8, 0.30, 0.45},     // 1/H_8 ≈ 36.8%
		{"hot-key", 2.5, 8, 0.70, 0.85}, // 1/Σ(1/r^2.5) over 8 ranks ≈ 78.7%
		{"two-keys", 1, 2, 0.60, 0.72},   // 2/3 ≈ 66.7%
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := counts(tc.z, tc.keys)
			head := float64(c[0]) / n
			if head < tc.minHead || head > tc.maxHead {
				t.Errorf("head share = %.3f, want within [%.2f, %.2f] (counts %v)", head, tc.minHead, tc.maxHead, c)
			}
			if tc.z > 0 && c[0] <= c[tc.keys-1] {
				t.Errorf("skew %v: head count %d not above tail count %d", tc.z, c[0], c[tc.keys-1])
			}
		})
	}

	// Same seed, same sequence: the schedule is replayable.
	a := PickSpec{Keys: 8, Z: 1}.Picks(rand.New(rand.NewSource(9)), 500)
	b := PickSpec{Keys: 8, Z: 1}.Picks(rand.New(rand.NewSource(9)), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("picks diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestCancelScheduleTiming pins the cancellation-storm generator: the
// cancelled fraction tracks Frac, every delay lies in [MinAfter,
// MaxAfter], and a pinned seed reproduces the schedule exactly.
func TestCancelScheduleTiming(t *testing.T) {
	for _, tc := range []struct {
		name             string
		spec             CancelSpec
		minFrac, maxFrac float64
	}{
		{"none", CancelSpec{N: 400, Frac: 0}, 0, 0},
		{"half", CancelSpec{N: 400, Frac: 0.5, MinAfter: 2 * time.Millisecond, MaxAfter: 20 * time.Millisecond}, 0.42, 0.58},
		{"all", CancelSpec{N: 400, Frac: 1, MinAfter: time.Millisecond, MaxAfter: time.Millisecond}, 1, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plans := tc.spec.Schedule(rand.New(rand.NewSource(3)))
			if len(plans) != tc.spec.N {
				t.Fatalf("len(plans) = %d, want %d", len(plans), tc.spec.N)
			}
			cancels := 0
			for i, p := range plans {
				if !p.Cancel {
					if p.After != 0 {
						t.Errorf("plan %d: pass-through trial has delay %v", i, p.After)
					}
					continue
				}
				cancels++
				if p.After < tc.spec.MinAfter || p.After > tc.spec.MaxAfter {
					t.Errorf("plan %d: delay %v outside [%v, %v]", i, p.After, tc.spec.MinAfter, tc.spec.MaxAfter)
				}
			}
			frac := float64(cancels) / float64(tc.spec.N)
			if frac < tc.minFrac || frac > tc.maxFrac {
				t.Errorf("cancel fraction = %.3f, want within [%.2f, %.2f]", frac, tc.minFrac, tc.maxFrac)
			}
		})
	}

	// Replayability: the same seed reproduces the identical storm.
	spec := CancelSpec{N: 100, Frac: 0.3, MinAfter: time.Millisecond, MaxAfter: 9 * time.Millisecond}
	a := spec.Schedule(rand.New(rand.NewSource(77)))
	b := spec.Schedule(rand.New(rand.NewSource(77)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestChurnStreamRatio pins the churn generator's insert/delete mix: the
// realized delete fraction tracks DeleteFrac, deletions only ever target
// live tuples (the stream is well-formed), and the surviving population
// equals inserts minus deletes.
func TestChurnStreamRatio(t *testing.T) {
	for _, tc := range []struct {
		name             string
		frac             float64
		minFrac, maxFrac float64
	}{
		{"insert-only", 0, 0, 0},
		{"light-churn", 0.2, 0.15, 0.25},
		{"churn-heavy", 0.45, 0.40, 0.50},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := StreamSpec{Rel: "R", Ops: 4000, DeleteFrac: tc.frac, Z: 1, Domain: 100}
			ops := Stream(rand.New(rand.NewSource(5)), spec)
			if len(ops) != spec.Ops {
				t.Fatalf("len(ops) = %d, want %d", len(ops), spec.Ops)
			}
			live := map[string]bool{}
			inserts, deletes := 0, 0
			for i, op := range ops {
				k := op.Tuple.Key(nil)
				if op.Delete {
					deletes++
					if !live[k] {
						t.Fatalf("op %d deletes a tuple that is not live", i)
					}
					delete(live, k)
				} else {
					inserts++
					if live[k] {
						t.Fatalf("op %d re-inserts a live tuple", i)
					}
					live[k] = true
				}
			}
			frac := float64(deletes) / float64(len(ops))
			if frac < tc.minFrac || frac > tc.maxFrac {
				t.Errorf("delete fraction = %.3f, want within [%.2f, %.2f]", frac, tc.minFrac, tc.maxFrac)
			}
			if got := Materialize("R", ops).Len(); got != inserts-deletes {
				t.Errorf("surviving population = %d, want %d", got, inserts-deletes)
			}
		})
	}
}
