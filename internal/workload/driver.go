package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Driver is the harness's HTTP client for a live relestd. It speaks the
// daemon's JSON wire format through its own minimal structs (this package
// is imported by the server, so it cannot import the server's types), and
// it retries load-shedding responses so a calibration run keeps its full
// trial set even while the service is saturated: a 429/503 means "later",
// not "no answer", and dropping shed trials would bias coverage stats
// toward quiet moments.
//
// Client-side goroutines here (Fanout) only issue HTTP requests and write
// disjoint result slots; estimate reductions still run exclusively through
// internal/parallel on the server.
type Driver struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7878".
	BaseURL string
	// Client is the HTTP client (http.DefaultClient when nil).
	Client *http.Client
	// Tenant is sent as X-Relest-Tenant when non-empty.
	Tenant string
	// MaxRetries bounds retry attempts per shed request (default 50).
	MaxRetries int
	// RetryDelay is the pause between retries (default 10ms).
	RetryDelay time.Duration

	// Retries counts shed-and-retried requests across the run.
	Retries atomic.Int64
}

func (d *Driver) client() *http.Client {
	if d.Client != nil {
		return d.Client
	}
	return http.DefaultClient
}

// Do posts body as JSON to path and returns the status and raw response
// bytes. A nil body sends an empty JSON object.
func (d *Driver) Do(ctx context.Context, path string, body any) (int, []byte, error) {
	if body == nil {
		body = struct{}{}
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, fmt.Errorf("workload: encoding %s body: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if d.Tenant != "" {
		req.Header.Set("X-Relest-Tenant", d.Tenant)
	}
	resp, err := d.client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	// Response body close errors carry nothing the caller can act on.
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, raw, nil
}

// DoRaw posts a raw (non-JSON) body — a CSV slice, say — with the given
// content type. The sharded coordinator pushes relation slices to shard
// nodes through this.
func (d *Driver) DoRaw(ctx context.Context, path, contentType string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if d.Tenant != "" {
		req.Header.Set("X-Relest-Tenant", d.Tenant)
	}
	resp, err := d.client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, raw, nil
}

// Get fetches path (e.g. /metrics, /v1/synopses) and returns the status
// and raw body.
func (d *Driver) Get(ctx context.Context, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.BaseURL+path, nil)
	if err != nil {
		return 0, nil, err
	}
	if d.Tenant != "" {
		req.Header.Set("X-Relest-Tenant", d.Tenant)
	}
	resp, err := d.client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, raw, nil
}

// Delete issues a DELETE to path and returns the status and raw body.
// The sharded coordinator rolls half-registered relations and synopses
// back through this after a failed fanout.
func (d *Driver) Delete(ctx context.Context, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, d.BaseURL+path, nil)
	if err != nil {
		return 0, nil, err
	}
	if d.Tenant != "" {
		req.Header.Set("X-Relest-Tenant", d.Tenant)
	}
	resp, err := d.client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, raw, nil
}

// shedStatus reports whether a status is load shedding worth retrying:
// queue or tenant-slot exhaustion (429) and drain refusals (503).
func shedStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// DoRetry is Do with shed retries: 429/503 responses are retried (up to
// MaxRetries, pausing RetryDelay) so saturation delays a trial instead of
// dropping it.
func (d *Driver) DoRetry(ctx context.Context, path string, body any) (int, []byte, error) {
	maxRetries := d.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 50
	}
	delay := d.RetryDelay
	if delay <= 0 {
		delay = 10 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		status, raw, err := d.Do(ctx, path, body)
		if err != nil {
			return status, raw, err
		}
		if !shedStatus(status) || attempt >= maxRetries {
			return status, raw, nil
		}
		d.Retries.Add(1)
		select {
		case <-ctx.Done():
			return status, raw, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// EstimateOutcome is the slice of relestd's estimate response the harness
// asserts on (field names mirror the server's wire format).
type EstimateOutcome struct {
	Estimate struct {
		Value float64 `json:"value"`
		Lo    float64 `json:"lo"`
		Hi    float64 `json:"hi"`
	} `json:"estimate"`
}

// Trial is one calibration observation: an estimate and its CI, to be
// compared against the exact truth. Failed or cancelled trials stay
// zero-valued with OK false and are excluded from the stats.
type Trial struct {
	OK     bool
	Status int
	Value  float64
	Lo     float64
	Hi     float64
}

// Estimate posts an estimation request (any JSON-marshalable shape) with
// shed retries and decodes the outcome into a Trial.
func (d *Driver) Estimate(ctx context.Context, req any) Trial {
	status, raw, err := d.DoRetry(ctx, "/v1/estimate", req)
	if err != nil {
		return Trial{Status: status}
	}
	if status != http.StatusOK {
		return Trial{Status: status}
	}
	var out EstimateOutcome
	if jsonErr := json.Unmarshal(raw, &out); jsonErr != nil {
		return Trial{Status: status}
	}
	return Trial{OK: true, Status: status, Value: out.Estimate.Value, Lo: out.Estimate.Lo, Hi: out.Estimate.Hi}
}

// Fanout runs jobs 0..n-1 across k client goroutines, goroutine g taking
// jobs g, g+k, g+2k, … . The static round-robin assignment (rather than a
// work-stealing queue) keeps each job's goroutine — and therefore any
// per-goroutine state a caller threads through — a pure function of the
// job index. Results belong in per-index slots; disjoint writes need no
// locks and leave the collected data independent of completion order.
func Fanout(k, n int, job func(i int)) {
	if k < 1 {
		k = 1
	}
	var wg sync.WaitGroup
	for g := 0; g < k; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += k {
				job(i)
			}
		}(g)
	}
	wg.Wait()
}
