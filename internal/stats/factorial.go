package stats

import (
	"fmt"
	"math"
	"math/big"
)

// FallingFactorial returns (x)_d = x·(x−1)·…·(x−d+1) as a float64.
// (x)_0 = 1 by convention. It panics for d < 0.
// For the population/sample sizes used in this library the result can
// overflow float64 for large d; use LogFallingFactorial or the big.Float
// variants when d is large.
func FallingFactorial(x, d int) float64 {
	if d < 0 {
		panic(fmt.Sprintf("stats: FallingFactorial requires d >= 0, got %d", d))
	}
	r := 1.0
	for i := 0; i < d; i++ {
		r *= float64(x - i)
	}
	return r
}

// LogFallingFactorial returns log (x)_d for x ≥ d ≥ 0 using log-gamma,
// which stays finite where the direct product would overflow.
// It returns −Inf when x < d (the product contains a zero or the ratio is
// used in a context where the pattern is infeasible).
func LogFallingFactorial(x, d int) float64 {
	if d < 0 {
		panic(fmt.Sprintf("stats: LogFallingFactorial requires d >= 0, got %d", d))
	}
	if x < d {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(x) + 1)
	b, _ := math.Lgamma(float64(x-d) + 1)
	return a - b
}

// FallingFactorialRatio returns (N)_d / (n)_d, the inverse inclusion
// probability of an ordered d-subset under SRSWOR of n from N. It is the
// fundamental scaling weight of the pattern-weighted term estimator.
// It returns +Inf when n < d (the sample cannot exhibit the pattern) and
// panics for d < 0 or N < d.
func FallingFactorialRatio(N, n, d int) float64 {
	if d < 0 {
		panic(fmt.Sprintf("stats: FallingFactorialRatio requires d >= 0, got %d", d))
	}
	if N < d {
		panic(fmt.Sprintf("stats: FallingFactorialRatio requires N >= d, got N=%d d=%d", N, d))
	}
	if n < d {
		return math.Inf(1)
	}
	// Interleave factors to keep the running product near its final
	// magnitude: ∏ (N−i)/(n−i).
	r := 1.0
	for i := 0; i < d; i++ {
		r *= float64(N-i) / float64(n-i)
	}
	return r
}

// BigFallingFactorial returns (x)_d as an exact big.Int-backed big.Float.
// Used by Goodman's distinct-count estimator, whose terms involve ratios of
// falling factorials with catastrophic cancellation in float64.
func BigFallingFactorial(x, d int) *big.Float {
	r := big.NewInt(1)
	t := new(big.Int)
	for i := 0; i < d; i++ {
		t.SetInt64(int64(x - i))
		r.Mul(r, t)
	}
	return new(big.Float).SetPrec(256).SetInt(r)
}

// BigChoose returns C(n, k) as an exact big.Float (precision 256 bits).
func BigChoose(n, k int) *big.Float {
	if k < 0 || k > n {
		return big.NewFloat(0)
	}
	r := new(big.Int).Binomial(int64(n), int64(k))
	return new(big.Float).SetPrec(256).SetInt(r)
}
