package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestWelfordAgainstDirect(t *testing.T) {
	cases := [][]float64{
		{1},
		{1, 2},
		{3, 3, 3, 3},
		{-5, 10, 0.5, 2.25, 17, -3},
		{1e9, 1e9 + 1, 1e9 + 2, 1e9 + 3}, // numerically hostile for naive sum of squares
	}
	for _, xs := range cases {
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var s2 float64
		for _, x := range xs {
			s2 += (x - mean) * (x - mean)
		}
		if len(xs) > 1 {
			s2 /= float64(len(xs) - 1)
		} else {
			s2 = 0
		}
		if !almostEqual(w.Mean(), mean, 1e-12) {
			t.Errorf("mean(%v) = %v, want %v", xs, w.Mean(), mean)
		}
		if !almostEqual(w.Variance(), s2, 1e-9) {
			t.Errorf("variance(%v) = %v, want %v", xs, w.Variance(), s2)
		}
		if w.N() != int64(len(xs)) {
			t.Errorf("n = %d, want %d", w.N(), len(xs))
		}
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	for i := 0; i < 7; i++ {
		a.Add(4.5)
	}
	a.Add(-2)
	b.AddN(4.5, 7)
	b.AddN(-2, 1)
	if !almostEqual(a.Mean(), b.Mean(), 1e-12) || !almostEqual(a.Variance(), b.Variance(), 1e-12) {
		t.Errorf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
	var c Welford
	c.AddN(3, 0) // no-op
	if c.N() != 0 {
		t.Errorf("AddN with k=0 should be a no-op, n=%d", c.N())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(split%50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		k := int(split) % n
		var whole, left, right Welford
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(right)
		return almostEqual(whole.Mean(), left.Mean(), 1e-9) &&
			almostEqual(whole.Variance(), left.Variance(), 1e-9) &&
			whole.N() == left.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(2)
	a.Merge(b)
	if a.N() != 2 || !almostEqual(a.Mean(), 1.5, 1e-12) {
		t.Errorf("merge into empty: %v", a.String())
	}
	var empty Welford
	a.Merge(empty)
	if a.N() != 2 {
		t.Errorf("merge of empty changed state: %v", a.String())
	}
}

func TestTotalVariance(t *testing.T) {
	// Exhaustive check against the definition on a tiny population:
	// enumerate all C(N, n) samples, compute the total estimator N·ȳ for
	// each, and compare the empirical variance with the Cochran formula.
	pop := []float64{1, 4, 4, 9, 0, 2}
	N := len(pop)
	n := 3
	S2 := func() float64 {
		m := 0.0
		for _, y := range pop {
			m += y
		}
		m /= float64(N)
		v := 0.0
		for _, y := range pop {
			v += (y - m) * (y - m)
		}
		return v / float64(N-1)
	}()
	want := float64(N*N) * (1 - float64(n)/float64(N)) * S2 / float64(n)

	var got Welford
	var rec func(start int, chosen []float64)
	rec = func(start int, chosen []float64) {
		if len(chosen) == n {
			sum := 0.0
			for _, y := range chosen {
				sum += y
			}
			got.Add(float64(N) * sum / float64(n))
			return
		}
		for i := start; i < N; i++ {
			rec(i+1, append(chosen, pop[i]))
		}
	}
	rec(0, nil)
	if !almostEqual(got.PopVariance(), want, 1e-9) {
		t.Errorf("empirical variance %v, formula %v", got.PopVariance(), want)
	}
}

func TestTotalVarianceEdgeCases(t *testing.T) {
	if v := TotalVariance(10, 1, 5); v != 0 {
		t.Errorf("n<2 should give 0, got %v", v)
	}
	if v := TotalVariance(10, 10, 5); v != 0 {
		t.Errorf("census should give 0, got %v", v)
	}
}

func TestProportionTotalVarianceUnbiased(t *testing.T) {
	// The plug-in variance estimator for a 0/1 population must be unbiased:
	// average it over all samples and compare to the true variance.
	const N, K, n = 8, 3, 4
	pop := make([]float64, N)
	for i := 0; i < K; i++ {
		pop[i] = 1
	}
	h, err := NewHypergeometric(N, K, n)
	if err != nil {
		t.Fatal(err)
	}
	trueVar := h.Variance() * float64(N) * float64(N) / float64(n) / float64(n)

	var avg Welford
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			hits := 0
			for _, i := range idx {
				if pop[i] == 1 {
					hits++
				}
			}
			avg.Add(ProportionTotalVariance(N, n, hits))
			return
		}
		for i := start; i < N; i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	if !almostEqual(avg.Mean(), trueVar, 1e-9) {
		t.Errorf("E[var estimate] = %v, true variance = %v", avg.Mean(), trueVar)
	}
}

func TestRelativeError(t *testing.T) {
	cases := []struct {
		est, act, want float64
	}{
		{10, 10, 0},
		{12, 10, 0.2},
		{8, 10, 0.2},
		{0, 0, 0},
		{-5, 10, 1.5},
	}
	for _, c := range cases {
		if got := RelativeError(c.est, c.act); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("RelativeError(%v, %v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(1, 0) = %v, want +Inf", got)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.975, 0.99, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almostEqual(got, p, 1e-10) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	// Known values.
	if z := NormalQuantile(0.975); math.Abs(z-1.959963984540054) > 1e-9 {
		t.Errorf("z_0.975 = %v", z)
	}
	if z := NormalQuantile(0.5); math.Abs(z) > 1e-12 {
		t.Errorf("z_0.5 = %v", z)
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) should panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestStudentTQuantile(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		p    float64
		nu   int
		want float64
		tol  float64
	}{
		{0.975, 1, 12.706, 1e-2},
		{0.975, 2, 4.3027, 1e-3},
		{0.975, 5, 2.5706, 2e-3},
		{0.975, 10, 2.2281, 2e-3},
		{0.975, 30, 2.0423, 2e-3},
		{0.95, 10, 1.8125, 2e-3},
		{0.99, 20, 2.5280, 5e-3},
	}
	for _, c := range cases {
		got := StudentTQuantile(c.p, c.nu)
		if math.Abs(got-c.want) > c.tol*c.want {
			t.Errorf("t(%v, %d) = %v, want %v", c.p, c.nu, got, c.want)
		}
	}
	// Symmetry and convergence to normal.
	if got := StudentTQuantile(0.5, 7); math.Abs(got) > 1e-9 {
		t.Errorf("median should be 0, got %v", got)
	}
	if got, want := StudentTQuantile(0.975, 100000), NormalQuantile(0.975); math.Abs(got-want) > 1e-3 {
		t.Errorf("large-nu t = %v, normal = %v", got, want)
	}
}

func TestChebyshevZ(t *testing.T) {
	if got := ChebyshevZ(0.25); !almostEqual(got, 2, 1e-12) {
		t.Errorf("ChebyshevZ(0.25) = %v, want 2", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ChebyshevZ(0) should panic")
			}
		}()
		ChebyshevZ(0)
	}()
}

func TestHypergeometric(t *testing.T) {
	h, err := NewHypergeometric(50, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h.Mean(), 1.0, 1e-12) {
		t.Errorf("mean = %v", h.Mean())
	}
	// PMF sums to 1.
	sum := 0.0
	for k := 0; k <= 10; k++ {
		sum += h.PMF(k)
	}
	if !almostEqual(sum, 1, 1e-10) {
		t.Errorf("PMF sums to %v", sum)
	}
	// CDF at the top of the support is 1.
	if got := h.CDF(10); !almostEqual(got, 1, 1e-10) {
		t.Errorf("CDF(10) = %v", got)
	}
	// Mean and variance match the PMF moments.
	var m, v float64
	for k := 0; k <= 10; k++ {
		m += float64(k) * h.PMF(k)
	}
	for k := 0; k <= 10; k++ {
		v += (float64(k) - m) * (float64(k) - m) * h.PMF(k)
	}
	if !almostEqual(m, h.Mean(), 1e-9) || !almostEqual(v, h.Variance(), 1e-9) {
		t.Errorf("moments: pmf(%v, %v) vs formula(%v, %v)", m, v, h.Mean(), h.Variance())
	}
}

func TestHypergeometricValidation(t *testing.T) {
	bad := [][3]int{{-1, 0, 0}, {5, 6, 1}, {5, -1, 1}, {5, 2, 6}, {5, 2, -1}}
	for _, c := range bad {
		if _, err := NewHypergeometric(c[0], c[1], c[2]); err == nil {
			t.Errorf("NewHypergeometric(%v) should fail", c)
		}
	}
}

func TestHypergeometricInfeasiblePMF(t *testing.T) {
	h, _ := NewHypergeometric(10, 2, 9)
	// With only 8 unmarked units, a sample of 9 must contain ≥ 1 marked.
	if p := h.PMF(0); p != 0 {
		t.Errorf("PMF(0) = %v, want 0", p)
	}
	sum := 0.0
	for k := 0; k <= 9; k++ {
		sum += h.PMF(k)
	}
	if !almostEqual(sum, 1, 1e-10) {
		t.Errorf("PMF sums to %v", sum)
	}
}

func TestBinomial(t *testing.T) {
	b := Binomial{N: 20, P: 0.3}
	sum := 0.0
	for k := 0; k <= 20; k++ {
		sum += b.PMF(k)
	}
	if !almostEqual(sum, 1, 1e-10) {
		t.Errorf("PMF sums to %v", sum)
	}
	if !almostEqual(b.Mean(), 6, 1e-12) || !almostEqual(b.Variance(), 4.2, 1e-12) {
		t.Errorf("moments: %v, %v", b.Mean(), b.Variance())
	}
	// Degenerate p.
	b0 := Binomial{N: 5, P: 0}
	if b0.PMF(0) != 1 || b0.PMF(1) != 0 {
		t.Error("p=0 PMF wrong")
	}
	b1 := Binomial{N: 5, P: 1}
	if b1.PMF(5) != 1 || b1.PMF(4) != 0 {
		t.Error("p=1 PMF wrong")
	}
}

func TestFallingFactorial(t *testing.T) {
	cases := []struct {
		x, d int
		want float64
	}{
		{5, 0, 1},
		{5, 1, 5},
		{5, 3, 60},
		{5, 5, 120},
		{5, 6, 0}, // passes through zero
		{3, 2, 6},
	}
	for _, c := range cases {
		if got := FallingFactorial(c.x, c.d); got != c.want {
			t.Errorf("(%d)_%d = %v, want %v", c.x, c.d, got, c.want)
		}
	}
}

func TestLogFallingFactorial(t *testing.T) {
	for _, c := range []struct{ x, d int }{{10, 3}, {100, 7}, {1000, 2}, {4, 4}} {
		want := math.Log(FallingFactorial(c.x, c.d))
		if got := LogFallingFactorial(c.x, c.d); !almostEqual(got, want, 1e-10) {
			t.Errorf("log(%d)_%d = %v, want %v", c.x, c.d, got, want)
		}
	}
	if got := LogFallingFactorial(3, 5); !math.IsInf(got, -1) {
		t.Errorf("x<d should give -Inf, got %v", got)
	}
}

func TestFallingFactorialRatio(t *testing.T) {
	// (10)_2/(4)_2 = 90/12 = 7.5
	if got := FallingFactorialRatio(10, 4, 2); !almostEqual(got, 7.5, 1e-12) {
		t.Errorf("ratio = %v, want 7.5", got)
	}
	// d=0 is 1 (empty product).
	if got := FallingFactorialRatio(10, 4, 0); got != 1 {
		t.Errorf("ratio d=0 = %v, want 1", got)
	}
	// d=1 is N/n, the classical scale-up.
	if got := FallingFactorialRatio(100, 10, 1); !almostEqual(got, 10, 1e-12) {
		t.Errorf("ratio d=1 = %v, want 10", got)
	}
	// Infeasible pattern.
	if got := FallingFactorialRatio(10, 1, 2); !math.IsInf(got, 1) {
		t.Errorf("n<d should give +Inf, got %v", got)
	}
}

func TestBigFallingFactorialMatchesFloat(t *testing.T) {
	for _, c := range []struct{ x, d int }{{5, 3}, {20, 10}, {7, 0}} {
		want := FallingFactorial(c.x, c.d)
		got, _ := BigFallingFactorial(c.x, c.d).Float64()
		if got != want {
			t.Errorf("big (%d)_%d = %v, want %v", c.x, c.d, got, want)
		}
	}
}

func TestBigChoose(t *testing.T) {
	got, _ := BigChoose(10, 3).Float64()
	if got != 120 {
		t.Errorf("C(10,3) = %v, want 120", got)
	}
	if v, _ := BigChoose(5, 7).Float64(); v != 0 {
		t.Errorf("C(5,7) = %v, want 0", v)
	}
}
