package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) for the statistical substrate.

func TestQuickNormalQuantileMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		p := 0.001 + math.Mod(math.Abs(a), 0.998)
		q := 0.001 + math.Mod(math.Abs(b), 0.998)
		if p > q {
			p, q = q, p
		}
		if p == q {
			return true
		}
		return NormalQuantile(p) <= NormalQuantile(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalCDFQuantileInverse(t *testing.T) {
	f := func(a float64) bool {
		p := 0.001 + math.Mod(math.Abs(a), 0.998)
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickHypergeometricCDFMonotoneAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 1 + rng.Intn(40)
		K := rng.Intn(N + 1)
		n := rng.Intn(N + 1)
		h, err := NewHypergeometric(N, K, n)
		if err != nil {
			return false
		}
		prev := -1.0
		for k := -1; k <= n+1; k++ {
			c := h.CDF(k)
			if c < prev-1e-12 || c < -1e-12 || c > 1+1e-12 {
				return false
			}
			prev = c
		}
		return math.Abs(h.CDF(n)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickFallingFactorialRecurrence(t *testing.T) {
	f := func(xRaw, dRaw uint8) bool {
		x := int(xRaw%40) + 1
		d := int(dRaw % 10)
		if d > x {
			d = x
		}
		// (x)_{d+1} = (x)_d · (x−d)
		lhs := FallingFactorial(x, d+1)
		rhs := FallingFactorial(x, d) * float64(x-d)
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFallingFactorialRatioInverseInclusion(t *testing.T) {
	// (N)_d/(n)_d · (n)_d/(N)_d = 1 whenever both are finite, and the
	// ratio decreases as n grows toward N.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 2 + rng.Intn(50)
		d := 1 + rng.Intn(3)
		if d > N {
			d = N
		}
		prev := math.Inf(1)
		for n := d; n <= N; n++ {
			r := FallingFactorialRatio(N, n, d)
			if r <= 0 || r > prev+1e-9 {
				return false
			}
			prev = r
		}
		// Census ratio is exactly 1.
		return math.Abs(FallingFactorialRatio(N, N, d)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickWelfordShiftInvariance(t *testing.T) {
	// Variance is invariant under constant shifts; mean shifts exactly.
	f := func(seed int64, shiftRaw int16) bool {
		rng := rand.New(rand.NewSource(seed))
		shift := float64(shiftRaw)
		n := 2 + rng.Intn(50)
		var a, b Welford
		for i := 0; i < n; i++ {
			x := rng.NormFloat64() * 10
			a.Add(x)
			b.Add(x + shift)
		}
		if math.Abs((b.Mean()-a.Mean())-shift) > 1e-9 {
			return false
		}
		return math.Abs(b.Variance()-a.Variance()) <= 1e-7*math.Max(1, a.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickTotalVarianceNonnegativeAndCensusZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 2 + rng.Intn(100)
		n := 2 + rng.Intn(N-1)
		s2 := rng.Float64() * 100
		v := TotalVariance(N, n, s2)
		if v < 0 {
			return false
		}
		return TotalVariance(N, N, s2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
