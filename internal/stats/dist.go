package stats

import (
	"fmt"
	"math"
)

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// NormalCDF returns Φ(x), the standard normal cumulative distribution,
// computed from the complementary error function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p ∈ (0, 1) using Acklam's rational
// approximation refined by one Halley step, giving ~1e-15 relative accuracy.
// It panics if p is outside (0, 1).
func NormalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: NormalQuantile requires 0 < p < 1, got %v", p))
	}
	// Coefficients for Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const plow, phigh = 0.02425, 1 - 0.02425

	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// StudentTQuantile returns the upper quantile t such that
// P(T_ν ≤ t) = p for a Student's t distribution with ν degrees of freedom,
// using the Cornish–Fisher style expansion of Peizer–Pratt/Hill around the
// normal quantile. For ν ≥ 2 the absolute error is below 1e-3 across
// p ∈ [0.005, 0.995], which is ample for confidence-interval construction.
// For ν ≤ 0 it panics; for very large ν it converges to NormalQuantile.
func StudentTQuantile(p float64, nu int) float64 {
	if nu <= 0 {
		panic(fmt.Sprintf("stats: StudentTQuantile requires nu > 0, got %d", nu))
	}
	if nu == 1 {
		// Exact: Cauchy quantile.
		return math.Tan(math.Pi * (p - 0.5))
	}
	if nu == 2 {
		// Exact closed form for ν = 2.
		alpha := 2*p - 1
		return alpha * math.Sqrt(2/(1-alpha*alpha))
	}
	z := NormalQuantile(p)
	// Hill's asymptotic inversion (Algorithm 396 flavor, truncated).
	g1 := (z*z*z + z) / 4
	g2 := (5*math.Pow(z, 5) + 16*z*z*z + 3*z) / 96
	g3 := (3*math.Pow(z, 7) + 19*math.Pow(z, 5) + 17*z*z*z - 15*z) / 384
	g4 := (79*math.Pow(z, 9) + 776*math.Pow(z, 7) + 1482*math.Pow(z, 5) - 1920*z*z*z - 945*z) / 92160
	v := float64(nu)
	return z + g1/v + g2/(v*v) + g3/(v*v*v) + g4/(v*v*v*v)
}

// ChebyshevZ returns the multiplier k such that Est ± k·σ is a
// distribution-free confidence interval at level 1−delta, by Chebyshev's
// inequality: P(|X−μ| ≥ kσ) ≤ 1/k². It panics unless 0 < delta < 1.
func ChebyshevZ(delta float64) float64 {
	if !(delta > 0 && delta < 1) {
		panic(fmt.Sprintf("stats: ChebyshevZ requires 0 < delta < 1, got %v", delta))
	}
	return 1 / math.Sqrt(delta)
}

// Hypergeometric describes the distribution of the number of "marked" units
// in an SRSWOR sample: population of size N containing K marked units,
// sample of size n.
type Hypergeometric struct {
	N int // population size
	K int // marked units in population
	n int // sample size
}

// NewHypergeometric validates and constructs the distribution.
func NewHypergeometric(N, K, n int) (Hypergeometric, error) {
	switch {
	case N < 0:
		return Hypergeometric{}, fmt.Errorf("stats: hypergeometric N = %d < 0", N)
	case K < 0 || K > N:
		return Hypergeometric{}, fmt.Errorf("stats: hypergeometric K = %d outside [0, %d]", K, N)
	case n < 0 || n > N:
		return Hypergeometric{}, fmt.Errorf("stats: hypergeometric n = %d outside [0, %d]", n, N)
	}
	return Hypergeometric{N: N, K: K, n: n}, nil
}

// Mean returns E[X] = n·K/N.
func (h Hypergeometric) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.n) * float64(h.K) / float64(h.N)
}

// Variance returns Var[X] = n·(K/N)·(1−K/N)·(N−n)/(N−1).
func (h Hypergeometric) Variance() float64 {
	if h.N <= 1 {
		return 0
	}
	p := float64(h.K) / float64(h.N)
	return float64(h.n) * p * (1 - p) * float64(h.N-h.n) / float64(h.N-1)
}

// PMF returns P(X = k), computed in log space for stability.
func (h Hypergeometric) PMF(k int) float64 {
	if k < 0 || k > h.n || k > h.K || h.n-k > h.N-h.K {
		return 0
	}
	lp := logChoose(h.K, k) + logChoose(h.N-h.K, h.n-k) - logChoose(h.N, h.n)
	return math.Exp(lp)
}

// CDF returns P(X ≤ k) by direct summation of the PMF. The support of the
// distributions used in this library is small (sample sizes), so direct
// summation is both exact enough and fast enough.
func (h Hypergeometric) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	lo := h.n - (h.N - h.K)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if m := min(h.n, h.K); hi > m {
		hi = m
	}
	sum := 0.0
	for i := lo; i <= hi; i++ {
		sum += h.PMF(i)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Binomial describes a Binomial(n, p) distribution, used for Bernoulli
// sampling analysis and as the with-replacement limit of Hypergeometric.
type Binomial struct {
	N int
	P float64
}

// Mean returns n·p.
func (b Binomial) Mean() float64 { return float64(b.N) * b.P }

// Variance returns n·p·(1−p).
func (b Binomial) Variance() float64 { return float64(b.N) * b.P * (1 - b.P) }

// PMF returns P(X = k) in log space.
func (b Binomial) PMF(k int) float64 {
	if k < 0 || k > b.N {
		return 0
	}
	//lint:ignore floateq degenerate-distribution branch: P is a caller-supplied parameter, exactly 0 means point mass at 0
	if b.P == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	//lint:ignore floateq degenerate-distribution branch: exactly 1 means point mass at N
	if b.P == 1 {
		if k == b.N {
			return 1
		}
		return 0
	}
	lp := logChoose(b.N, k) + float64(k)*math.Log(b.P) + float64(b.N-k)*math.Log(1-b.P)
	return math.Exp(lp)
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
