// Package stats provides the small statistical substrate the estimators are
// built on: streaming moment accumulators, finite-population (SRSWOR)
// variance algebra, classical distributions (normal, Student's t,
// hypergeometric, binomial), confidence-interval helpers, and exact
// falling-factorial arithmetic (float64 with log-space fallback, and
// arbitrary-precision big.Float for Goodman's distinct-count estimator).
//
// Everything in this package is deterministic and allocation-light; the
// random machinery lives in package sampling.
package stats

import (
	"fmt"
	"math"
)

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddN incorporates the observation x with integer weight k (k copies).
func (w *Welford) AddN(x float64, k int64) {
	if k <= 0 {
		return
	}
	// Chan et al. parallel update of (n, mean, M2) with a block of k
	// identical observations: the block has mean x and zero variance.
	nb := float64(k)
	na := float64(w.n)
	d := x - w.mean
	w.n += k
	w.mean += d * nb / (na + nb)
	w.m2 += d * d * na * nb / (na + nb)
}

// Merge combines another accumulator into w, as if all of v's observations
// had been added to w.
func (w *Welford) Merge(v Welford) {
	if v.n == 0 {
		return
	}
	if w.n == 0 {
		*w = v
		return
	}
	na, nb := float64(w.n), float64(v.n)
	d := v.mean - w.mean
	w.mean += d * nb / (na + nb)
	w.m2 += v.m2 + d*d*na*nb/(na+nb)
	w.n += v.n
}

// N returns the number of observations seen.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance s² (divisor n−1).
// It returns 0 when fewer than two observations have been added.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population variance (divisor n).
func (w *Welford) PopVariance() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Reset restores the accumulator to its zero state.
func (w *Welford) Reset() { *w = Welford{} }

// String implements fmt.Stringer for debugging.
func (w *Welford) String() string {
	return fmt.Sprintf("Welford{n=%d mean=%g s2=%g}", w.n, w.Mean(), w.Variance())
}

// SRSWOR variance algebra.
//
// For a simple random sample of size n drawn without replacement from a
// population of N units with values y_1..y_N, the Horvitz–Thompson style
// estimator of the population total τ = Σ y_i is τ̂ = N·ȳ. Its exact
// variance is
//
//	Var(τ̂) = N² · (1 − f) · S² / n,   f = n/N,
//
// where S² is the population variance with divisor N−1, and the plug-in
// estimator replacing S² by the sample variance s² is unbiased
// (Cochran, Sampling Techniques, Thm 2.2). These helpers implement that
// algebra once so every estimator uses identical finite-population
// corrections.

// TotalEstimate returns the SRSWOR estimator N·ȳ of a population total.
func TotalEstimate(populationSize int, sampleMean float64) float64 {
	return float64(populationSize) * sampleMean
}

// TotalVariance returns the unbiased variance estimate of the SRSWOR total
// estimator N·ȳ given the sample variance s² (divisor n−1).
// It returns 0 when n ≥ N (a census has no sampling error) or n < 2.
func TotalVariance(populationSize, sampleSize int, sampleVariance float64) float64 {
	n, N := float64(sampleSize), float64(populationSize)
	if sampleSize < 2 || sampleSize >= populationSize {
		return 0
	}
	fpc := 1 - n/N
	return N * N * fpc * sampleVariance / n
}

// ProportionTotalVariance is TotalVariance specialized to 0/1 observations:
// x of the n sampled units have the property, and the estimated number of
// population units with the property is N·x/n. The sample variance of a 0/1
// sample is s² = n/(n−1) · p̂(1−p̂).
func ProportionTotalVariance(populationSize, sampleSize, hits int) float64 {
	if sampleSize < 2 {
		return 0
	}
	p := float64(hits) / float64(sampleSize)
	s2 := float64(sampleSize) / float64(sampleSize-1) * p * (1 - p)
	return TotalVariance(populationSize, sampleSize, s2)
}

// RelativeError returns |est − actual| / actual. When actual is 0 it
// returns 0 if est is also 0 and +Inf otherwise, which keeps aggregate
// error metrics well defined on degenerate workloads.
func RelativeError(est, actual float64) float64 {
	//lint:ignore floateq division guard: only an exactly-zero actual needs the degenerate branches below
	if actual == 0 {
		//lint:ignore floateq exact agreement with an exactly-zero actual is the one zero-error case
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-actual) / math.Abs(actual)
}
