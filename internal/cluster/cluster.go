// Package cluster is the sharded estimation tier: a coordinator that
// fans estimation requests out to N shard-node relestds and merges their
// partial estimates by stratified composition (internal/estimator's
// MergeStratified). Relations are hash- or range-sharded by a ShardSpec;
// each shard node owns its slice of every relation and that slice's
// synopses, so a shard's answer to a shardable query is an unbiased
// estimate of the slice's contribution and the cluster estimate is the
// stratified sum — a real estimate with a real CI, byte-identical to a
// single node when shards=1.
//
// Shard nodes are stock relestds (internal/server); everything
// cluster-specific lives in the coordinator, which speaks the daemon's
// own HTTP/JSON API to the shards. The in-process Harness runs the whole
// tier inside one binary for CI and the `relestd -shards N` mode.
package cluster

import (
	"fmt"
	"sort"

	"relest/internal/algebra"
	"relest/internal/relation"
)

// ShardSpec fixes how relations split across shard nodes. The same spec
// must route a key value identically everywhere, forever: slices,
// synopsis rebuilds, rebalance pushes, and incremental stream routing all
// re-derive placement from it.
type ShardSpec struct {
	// Shards is the shard count (>= 1).
	Shards int
	// Mode is "hash" (default) or "range".
	Mode string
	// Bounds are the inclusive upper key bounds of shards 0..Shards-2 in
	// range mode (sorted ascending; the last shard takes everything
	// above). Range mode shards integer keys only.
	Bounds []int64
}

// Shard modes.
const (
	ModeHash  = "hash"
	ModeRange = "range"
)

func (s ShardSpec) validate() error {
	if s.Shards < 1 {
		return fmt.Errorf("cluster: spec needs at least one shard, got %d", s.Shards)
	}
	switch s.Mode {
	case "", ModeHash:
		if len(s.Bounds) != 0 {
			return fmt.Errorf("cluster: hash mode takes no bounds")
		}
	case ModeRange:
		if len(s.Bounds) != s.Shards-1 {
			return fmt.Errorf("cluster: range mode over %d shards needs %d bounds, got %d", s.Shards, s.Shards-1, len(s.Bounds))
		}
		for i := 1; i < len(s.Bounds); i++ {
			if s.Bounds[i-1] >= s.Bounds[i] {
				return fmt.Errorf("cluster: range bounds must be strictly ascending")
			}
		}
	default:
		return fmt.Errorf("cluster: unknown shard mode %q (want hash or range)", s.Mode)
	}
	return nil
}

// Route maps one shard-key value to its owning shard. NULLs live on
// shard 0 (any fixed placement works: SQL equality never matches NULL, so
// no join pair is split by it). Routing must agree with value equality —
// equal keys land on the same shard — which is what makes co-partitioned
// joins decompose over shards.
func (s ShardSpec) Route(v relation.Value) (int, error) {
	if s.Shards == 1 {
		return 0, nil
	}
	if v.IsNull() {
		return 0, nil
	}
	if s.Mode == ModeRange {
		if v.Kind() != relation.KindInt {
			return 0, fmt.Errorf("cluster: range sharding needs an int shard key, got %s", v.Kind())
		}
		k := v.Int64()
		n := sort.Search(len(s.Bounds), func(i int) bool { return s.Bounds[i] >= k })
		return n, nil
	}
	// Value.Hash is Equal-consistent by contract — Int(2) and Float(2.0)
	// collide, -0.0 folds into +0.0 — so hashing through it is what makes
	// routing agree with the join equality it co-partitions for. Hashing
	// raw representation bits here would split SQL-equal keys (say -0.0
	// and 0.0) across shards and silently lose their matching pairs.
	return int(v.Hash() % uint64(s.Shards)), nil
}

// sliceRows returns the row positions of r owned by the given shard under
// the spec, keyed on column keyCol, in base order. Base order matters:
// with shards=1 the single slice reproduces the relation row for row, so
// a one-shard cluster redraws byte-identical synopses.
func sliceRows(r *relation.Relation, keyCol int, spec ShardSpec, shard int) ([]int, error) {
	var rows []int
	for i := 0; i < r.Len(); i++ {
		s, err := spec.Route(r.Value(i, keyCol))
		if err != nil {
			return nil, fmt.Errorf("cluster: routing %s row %d: %w", r.Name(), i, err)
		}
		if s == shard {
			rows = append(rows, i)
		}
	}
	return rows, nil
}

// shardSeed derives shard s's seed from a request seed: shard 0 keeps
// the seed exactly (the byte-identity anchor for one-shard clusters),
// and the odd multiplier (the 64-bit golden-ratio constant) decorrelates
// the rest. Per-shard draws must be independent for the stratified
// variance sum to hold.
func shardSeed(seed int64, shard int) int64 {
	return seed + int64(shard)*-7046029254386353131 // 0x9e3779b97f4a7c15 as int64
}

// keyPosFn resolves a relation name to its shard-key column position.
type keyPosFn func(rel string) (int, bool)

// termShardable reports whether one polynomial term decomposes over the
// shard partition: COUNT of the term splits into a per-shard sum exactly
// when every pair of occurrences is forced onto the same shard, i.e. the
// term's equality constraints over shard-key columns connect all
// occurrences (equal keys route identically, so cross-shard combinations
// contribute zero). Single-occurrence terms are trivially shardable; a
// cross product is not — Σ_s |R_s|·|S_s| undercounts |R×S|.
func termShardable(t algebra.Term, keyPos keyPosFn) bool {
	if len(t.Occs) <= 1 {
		return true
	}
	parent := make([]int, len(t.Occs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, eq := range t.Eqs {
		ka, oka := keyPos(t.Occs[eq.A.Occ].RelName)
		kb, okb := keyPos(t.Occs[eq.B.Occ].RelName)
		if oka && okb && eq.A.Col == ka && eq.B.Col == kb {
			parent[find(eq.A.Occ)] = find(eq.B.Occ)
		}
	}
	root := find(0)
	for i := 1; i < len(t.Occs); i++ {
		if find(i) != root {
			return false
		}
	}
	return true
}

// checkShardable verifies every term of the normalized polynomial
// decomposes over the shard partition. Queries that do not — joins off
// the shard key, cross products — are refused outright: a per-shard sum
// for them would be a silently wrong number, and the contract is to never
// serve one.
func checkShardable(poly algebra.Polynomial, keyPos keyPosFn) error {
	for i, t := range poly.Terms {
		if !termShardable(t, keyPos) {
			rels := map[string]bool{}
			var names []string
			for _, o := range t.Occs {
				if !rels[o.RelName] {
					rels[o.RelName] = true
					names = append(names, o.RelName)
				}
			}
			sort.Strings(names)
			return fmt.Errorf("cluster: term %d over %v is not shardable: every join must equate the relations' shard-key columns so all matching tuples are co-located on one shard", i, names)
		}
	}
	return nil
}
