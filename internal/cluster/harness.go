package cluster

import (
	"context"
	"fmt"

	"relest/internal/obs"
	"relest/internal/server"
)

// HarnessConfig configures an in-process cluster: N shard relestds plus a
// coordinator inside one binary, for CI and the `relestd -shards N` mode.
type HarnessConfig struct {
	// Shards is the shard count (>= 1).
	Shards int
	// Mode and Bounds form the ShardSpec (default hash).
	Mode   string
	Bounds []int64
	// ShardKey is the coordinator's DefaultShardKey.
	ShardKey string
	// Shard is the template config for each shard node. Addr and
	// Collector are overridden per shard: every node binds its own
	// ephemeral port and owns a private collector, so the merged /metrics
	// view can label each shard's families distinctly.
	Shard server.Config
	// Coordinator overrides the coordinator config; ShardAddrs and Spec
	// are filled in by the harness.
	Coordinator Config
}

// Harness is a whole estimation cluster in one process.
type Harness struct {
	// Shards are the shard nodes, indexed by shard id.
	Shards []*server.Server
	// Coord is the coordinator fronting them.
	Coord *Coordinator
}

// StartHarness boots the shard nodes, then the coordinator pointed at
// them. On any failure everything already started is shut down.
func StartHarness(cfg HarnessConfig) (*Harness, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: harness needs at least one shard, got %d", cfg.Shards)
	}
	h := &Harness{}
	fail := func(err error) (*Harness, error) {
		_ = h.Close(context.Background())
		return nil, err
	}
	addrs := make([]string, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		scfg := cfg.Shard
		scfg.Addr = "127.0.0.1:0"
		scfg.Collector = obs.NewCollector()
		node := server.New(scfg)
		if err := node.Start(); err != nil {
			return fail(fmt.Errorf("cluster: starting shard %d: %w", i, err))
		}
		h.Shards = append(h.Shards, node)
		addrs[i] = "http://" + node.Addr()
	}

	ccfg := cfg.Coordinator
	ccfg.ShardAddrs = addrs
	ccfg.Spec = ShardSpec{Shards: cfg.Shards, Mode: cfg.Mode, Bounds: cfg.Bounds}
	if ccfg.DefaultShardKey == "" {
		ccfg.DefaultShardKey = cfg.ShardKey
	}
	coord, err := New(ccfg)
	if err != nil {
		return fail(err)
	}
	if err := coord.Start(); err != nil {
		return fail(err)
	}
	h.Coord = coord
	return h, nil
}

// Addr returns the coordinator's address.
func (h *Harness) Addr() string { return h.Coord.Addr() }

// Close drains the coordinator first (so no new fanouts start), then the
// shard nodes.
func (h *Harness) Close(ctx context.Context) error {
	var first error
	if h.Coord != nil {
		first = h.Coord.Shutdown(ctx)
	}
	for _, s := range h.Shards {
		if err := s.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
