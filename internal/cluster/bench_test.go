package cluster

import (
	"context"
	"net/http"
	"testing"
	"time"

	"relest/internal/server"
)

// benchSetup registers the golden dataset and synopsis at the given base
// URL.
func benchSetup(b *testing.B, base string) server.EstimateRequest {
	b.Helper()
	if status, raw := postJSON(b, base+"/v1/generate", server.GenerateRequest{
		Kind: "zipf-pair", N: 2000, Domain: 200, Seed: 7,
	}); status != http.StatusCreated {
		b.Fatalf("generate: %d %s", status, raw)
	}
	if status, raw := postJSON(b, base+"/v1/synopses/main", server.SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": 200, "R2": 200}, Seed: 9,
	}); status != http.StatusCreated {
		b.Fatalf("synopsis: %d %s", status, raw)
	}
	return server.EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 3,
	}
}

// benchEstimate measures the full client-visible coordinator path at the
// given shard count: HTTP in, scatter-gather, per-shard estimation,
// stratified merge, JSON out.
func benchEstimate(b *testing.B, shards int) {
	h, err := StartHarness(HarnessConfig{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := h.Close(ctx); err != nil {
			b.Errorf("close: %v", err)
		}
	}()
	req := benchSetup(b, "http://"+h.Addr())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, raw := postJSON(b, "http://"+h.Addr()+"/v1/estimate", req)
		if status != http.StatusOK {
			b.Fatalf("estimate: %d %s", status, raw)
		}
	}
}

func BenchmarkCoordEstimateShards1(b *testing.B) { benchEstimate(b, 1) }
func BenchmarkCoordEstimateShards2(b *testing.B) { benchEstimate(b, 2) }
func BenchmarkCoordEstimateShards4(b *testing.B) { benchEstimate(b, 4) }

// BenchmarkSingleNodeEstimate is the baseline: the same estimate against
// a stock relestd with no coordinator in the path. The shards=1 gap to
// this number is the pure cost of the cluster hop (one proxied HTTP
// round-trip plus decode/merge/re-encode).
func BenchmarkSingleNodeEstimate(b *testing.B) {
	s := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	}()
	req := benchSetup(b, "http://"+s.Addr())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, raw := postJSON(b, "http://"+s.Addr()+"/v1/estimate", req)
		if status != http.StatusOK {
			b.Fatalf("estimate: %d %s", status, raw)
		}
	}
}
