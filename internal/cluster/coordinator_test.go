package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"regexp"
	"strings"
	"testing"
	"time"

	"relest/internal/server"
)

// startCluster boots an in-process cluster and tears it down with the
// test.
func startCluster(t *testing.T, cfg HarnessConfig) (*Harness, string) {
	t.Helper()
	h, err := StartHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := h.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return h, "http://" + h.Addr()
}

func postJSON(t testing.TB, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("closing body: %v", err)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("closing body: %v", err)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// setupClusterDataset registers the golden zipf-pair dataset and "main"
// synopsis through the coordinator.
func setupClusterDataset(t *testing.T, base string, n, sample int) {
	t.Helper()
	status, body := postJSON(t, base+"/v1/generate", server.GenerateRequest{
		Kind: "zipf-pair", N: n, Domain: 200, Seed: 7,
	})
	if status != http.StatusCreated {
		t.Fatalf("generate: %d %s", status, body)
	}
	status, body = postJSON(t, base+"/v1/synopses/main", server.SynopsisRequest{
		Kind: "static", Relations: map[string]int{"R1": sample, "R2": sample}, Seed: 9,
	})
	if status != http.StatusCreated {
		t.Fatalf("create synopsis: %d %s", status, body)
	}
}

func counterValue(t *testing.T, h *Harness, shard int, name string) float64 {
	t.Helper()
	return h.Shards[shard].Collector().Metrics().Counter(name).Value()
}

// TestShardFanout is the tentpole's happy path: a two-shard cluster
// answers a co-partitioned join estimate by scatter-gather, one
// sub-request per shard, and the merged estimate is a plausible count
// with a finite CI.
func TestShardFanout(t *testing.T) {
	h, base := startCluster(t, HarnessConfig{Shards: 2})
	setupClusterDataset(t, base, 2000, 200)

	status, raw := postJSON(t, base+"/v1/estimate", server.EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 3,
	})
	if status != http.StatusOK {
		t.Fatalf("estimate: %d %s", status, raw)
	}
	var resp EstimateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	if resp.Partial || len(resp.ShardsMissed) != 0 {
		t.Errorf("healthy cluster answered partial=%v missed=%v", resp.Partial, resp.ShardsMissed)
	}
	if resp.Estimate.Value <= 0 {
		t.Errorf("estimate value = %v", resp.Estimate.Value)
	}
	if !(resp.Estimate.Lo <= resp.Estimate.Value && resp.Estimate.Value <= resp.Estimate.Hi) {
		t.Errorf("CI [%v, %v] does not bracket the estimate %v", resp.Estimate.Lo, resp.Estimate.Hi, resp.Estimate.Value)
	}
	// Both shards drew samples: the merged consumption is split across
	// their slices and sums to roughly the ask.
	if got := resp.SamplesConsumed["R1"]; got < 190 || got > 210 {
		t.Errorf("merged R1 samples = %d, want about 200", got)
	}

	if got := h.Coord.Collector().Metrics().Counter(mFanout).Value(); got != 2 {
		t.Errorf("%s = %v, want 2 (one sub-request per shard)", mFanout, got)
	}
	for s := 0; s < 2; s++ {
		if got := counterValue(t, h, s, `relestd_requests_total{code="200"}`); got < 1 {
			t.Errorf("shard %d served %v estimates, want >= 1", s, got)
		}
	}

	// Repeating the request reproduces the bytes: the fanout-and-merge
	// path is deterministic for a pinned seed.
	status2, raw2 := postJSON(t, base+"/v1/estimate", server.EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 3,
	})
	if status2 != http.StatusOK || !bytes.Equal(raw, raw2) {
		t.Errorf("repeat estimate differs:\n%s\nvs\n%s", raw, raw2)
	}

	// Topology and health reporting.
	status, raw = getBody(t, base+"/v1/cluster")
	if status != http.StatusOK {
		t.Fatalf("topology: %d %s", status, raw)
	}
	var topo TopologyResponse
	if err := json.Unmarshal(raw, &topo); err != nil {
		t.Fatal(err)
	}
	if topo.Shards != 2 || topo.Mode != ModeHash || len(topo.Addrs) != 2 {
		t.Errorf("topology = %+v", topo)
	}
	if topo.ShardKeys["R1"] != "a" {
		t.Errorf("R1 shard key = %q, want the first column a", topo.ShardKeys["R1"])
	}
	status, raw = getBody(t, base+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(raw), `"role":"coordinator"`) {
		t.Errorf("healthz: %d %s", status, raw)
	}
}

// TestShardEstimateRejections pins the coordinator's refusal contract:
// non-plain modes and queries that do not decompose over the shard
// partition are refused outright — never silently wrong numbers.
func TestShardEstimateRejections(t *testing.T) {
	_, base := startCluster(t, HarnessConfig{Shards: 2})

	// Two-column relations joined off the shard key.
	for _, name := range []string{"T1", "T2"} {
		resp, err := http.Post(base+"/v1/relations/"+name, "text/csv",
			strings.NewReader("a,b\n1,10\n2,20\n3,30\n4,40\n"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: %d", name, resp.StatusCode)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}
	status, raw := postJSON(t, base+"/v1/synopses/t", server.SynopsisRequest{
		Kind: "static", Relations: map[string]int{"T1": 4, "T2": 4}, Seed: 1,
	})
	if status != http.StatusCreated {
		t.Fatalf("synopsis: %d %s", status, raw)
	}

	status, raw = postJSON(t, base+"/v1/estimate", server.EstimateRequest{
		Query: "count(join(T1, T2, on b = b))", Synopsis: "t", Seed: 1,
	})
	if status != http.StatusUnprocessableEntity {
		t.Errorf("off-key join: %d %s, want 422", status, raw)
	}
	if !strings.Contains(string(raw), "not shardable") {
		t.Errorf("off-key join error does not explain shardability: %s", raw)
	}

	status, raw = postJSON(t, base+"/v1/estimate", server.EstimateRequest{
		Query: "count(join(T1, T2, on a = a))", Synopsis: "t", Mode: "sequential", Seed: 1,
	})
	if status != http.StatusBadRequest || !strings.Contains(string(raw), "plain mode only") {
		t.Errorf("sequential mode: %d %s, want a 400 naming the plain-only contract", status, raw)
	}

	status, raw = postJSON(t, base+"/v1/estimate", server.EstimateRequest{
		Query: "count(join(T1, T2, on a = a))", Synopsis: "nope", Seed: 1,
	})
	if status != http.StatusNotFound {
		t.Errorf("unknown synopsis: %d %s, want 404", status, raw)
	}
}

// TestShardDeadlineMiss wedges one shard behind a delaying proxy and pins
// the degradation contract: the coordinator answers 200 with
// partial: true, names the missed shard, scales the answered strata up,
// and widens the CI — it never serves the partial sum as if it were the
// whole cluster.
func TestShardDeadlineMiss(t *testing.T) {
	// Two stock shard nodes.
	var shards []*server.Server
	for i := 0; i < 2; i++ {
		s := server.New(server.Config{Addr: "127.0.0.1:0"})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
		})
		shards = append(shards, s)
	}

	// Shard 1 sits behind a proxy that delays only estimation calls, so
	// registration flows freely but estimates overrun the shard budget.
	target, err := url.Parse("http://" + shards[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(target)
	// The coordinator cancels the in-flight sub-request when the shard
	// budget expires; that cancellation is the point, not log noise.
	proxy.ErrorLog = log.New(io.Discard, "", 0)
	delay := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/estimate" {
			time.Sleep(600 * time.Millisecond)
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(delay.Close)

	coord, err := New(Config{
		ShardAddrs: []string{"http://" + shards[0].Addr(), delay.URL},
		Spec:       ShardSpec{Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx)
	})
	base := "http://" + coord.Addr()
	setupClusterDataset(t, base, 2000, 200)

	req := server.EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 3,
	}

	// Generous budget: both shards answer, full-cluster estimate.
	status, raw := postJSON(t, base+"/v1/estimate", req)
	if status != http.StatusOK {
		t.Fatalf("full estimate: %d %s", status, raw)
	}
	var full EstimateResponse
	if err := json.Unmarshal(raw, &full); err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatalf("600ms delay beat the 30s default budget: %s", raw)
	}

	// Tight budget: shard 1 cannot answer inside 90% of 300ms.
	req.TimeoutMS = 300
	status, raw = postJSON(t, base+"/v1/estimate", req)
	if status != http.StatusOK {
		t.Fatalf("degraded estimate: %d %s", status, raw)
	}
	var part EstimateResponse
	if err := json.Unmarshal(raw, &part); err != nil {
		t.Fatal(err)
	}
	if !part.Partial {
		t.Fatalf("slow shard did not degrade the response: %s", raw)
	}
	if len(part.ShardsMissed) != 1 || part.ShardsMissed[0] != 1 {
		t.Errorf("shards_missed = %v, want [1]", part.ShardsMissed)
	}
	if part.Estimate.Value <= 0 {
		t.Errorf("degraded value = %v", part.Estimate.Value)
	}
	fullWidth := full.Estimate.Hi - full.Estimate.Lo
	partWidth := part.Estimate.Hi - part.Estimate.Lo
	if partWidth <= fullWidth {
		t.Errorf("degraded CI width %v is not wider than the full-cluster %v; a missing stratum must widen, never narrow", partWidth, fullWidth)
	}

	if got := coord.Collector().Metrics().Counter(shardLabel(mDeadlineMiss, 1)).Value(); got < 1 {
		t.Errorf("%s = %v, want >= 1", shardLabel(mDeadlineMiss, 1), got)
	}
	if got := coord.Collector().Metrics().Counter(mPartialResp).Value(); got < 1 {
		t.Errorf("%s = %v, want >= 1", mPartialResp, got)
	}
}

// TestShardRebalance moves a shard to a fresh node and pins the
// determinism contract: the same pinned-seed estimate is byte-identical
// before and after the move, because the new node rebuilds the slice and
// its synopsis from the same spec and derived seed.
func TestShardRebalance(t *testing.T) {
	h, base := startCluster(t, HarnessConfig{Shards: 2})
	setupClusterDataset(t, base, 2000, 200)

	req := server.EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 3,
	}
	status, before := postJSON(t, base+"/v1/estimate", req)
	if status != http.StatusOK {
		t.Fatalf("estimate before: %d %s", status, before)
	}

	// A fresh, empty node to take over shard 1.
	fresh := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err := fresh.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = fresh.Shutdown(ctx)
	})

	status, raw := postJSON(t, base+"/v1/cluster/rebalance", RebalanceRequest{
		Shard: 1, Addr: "http://" + fresh.Addr(),
	})
	if status != http.StatusOK {
		t.Fatalf("rebalance: %d %s", status, raw)
	}
	var moved RebalanceResponse
	if err := json.Unmarshal(raw, &moved); err != nil {
		t.Fatal(err)
	}
	if moved.Relations != 2 || moved.Synopses != 1 {
		t.Errorf("rebalance moved %d relations, %d synopses; want 2 and 1", moved.Relations, moved.Synopses)
	}

	status, after := postJSON(t, base+"/v1/estimate", req)
	if status != http.StatusOK {
		t.Fatalf("estimate after: %d %s", status, after)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("estimate changed across rebalance:\nbefore: %s\nafter:  %s", before, after)
	}
	// The new node served it.
	if got := fresh.Collector().Metrics().Counter(`relestd_requests_total{code="200"}`).Value(); got < 1 {
		t.Errorf("fresh node served %v estimates after rebalance, want >= 1", got)
	}
	if got := h.Coord.Collector().Metrics().Counter(mRebalance).Value(); got != 1 {
		t.Errorf("%s = %v, want 1", mRebalance, got)
	}

	// Incremental synopses refuse to move: reservoir state has no spec to
	// replay.
	status, raw = postJSON(t, base+"/v1/synopses/inc", server.SynopsisRequest{
		Kind: "incremental", Relations: map[string]int{"R1": 0}, Seed: 5,
	})
	if status != http.StatusCreated {
		t.Fatalf("incremental synopsis: %d %s", status, raw)
	}
	status, raw = postJSON(t, base+"/v1/cluster/rebalance", RebalanceRequest{
		Shard: 0, Addr: "http://" + fresh.Addr(),
	})
	if status != http.StatusConflict {
		t.Errorf("rebalance with incremental synopsis: %d %s, want 409", status, raw)
	}
}

// TestBatchSingleAdmission pins the batch contract across the cluster:
// however many queries a batch carries, each shard node admits exactly
// one batch request — one admission slot per shard per batch.
func TestBatchSingleAdmission(t *testing.T) {
	h, base := startCluster(t, HarnessConfig{Shards: 2})
	setupClusterDataset(t, base, 2000, 200)

	q := "count(join(R1, R2, on a = a))"
	status, raw := postJSON(t, base+"/v1/estimate/batch", server.BatchEstimateRequest{
		Queries: []server.EstimateRequest{
			{Query: q, Synopsis: "main", Seed: 3},
			{Query: q, Synopsis: "main", Seed: 4},
			{Query: "count(R1)", Synopsis: "main", Seed: 5},
			{Query: q, Synopsis: "missing", Seed: 6}, // invalid: never fans out
		},
	})
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, raw)
	}
	var resp BatchEstimateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Succeeded != 3 || resp.Failed != 1 {
		t.Fatalf("batch outcome %d/%d, want 3 succeeded 1 failed: %s", resp.Succeeded, resp.Failed, raw)
	}
	if resp.Results[3].Status != http.StatusNotFound {
		t.Errorf("invalid item status = %d, want 404", resp.Results[3].Status)
	}
	for i, res := range resp.Results[:3] {
		if res.Estimate == nil || res.Estimate.Estimate.Value <= 0 {
			t.Errorf("item %d: %+v", i, res)
		}
	}

	for s := 0; s < 2; s++ {
		if got := counterValue(t, h, s, "relestd_batch_requests_total"); got != 1 {
			t.Errorf("shard %d admitted %v batch requests, want exactly 1", s, got)
		}
		if got := counterValue(t, h, s, `relestd_batch_queries_total{code="200"}`); got != 3 {
			t.Errorf("shard %d ran %v batch queries, want 3", s, got)
		}
	}
}

// TestClusterMetricsExposition pins the merged /metrics contract
// (satellite of the sharded tier): coordinator families come first, every
// shard family carries a distinct shard label, each family has exactly
// one TYPE line, and the whole body stays valid Prometheus text format.
func TestClusterMetricsExposition(t *testing.T) {
	_, base := startCluster(t, HarnessConfig{Shards: 2})
	setupClusterDataset(t, base, 2000, 200)
	if status, raw := postJSON(t, base+"/v1/estimate", server.EstimateRequest{
		Query: "count(join(R1, R2, on a = a))", Synopsis: "main", Seed: 3,
	}); status != http.StatusOK {
		t.Fatalf("estimate: %d %s", status, raw)
	}

	status, raw := getBody(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	body := string(raw)

	for _, want := range []string{mFanout, mShardLatency} {
		if !strings.Contains(body, want) {
			t.Errorf("merged exposition lacks %q", want)
		}
	}
	for s := 0; s < 2; s++ {
		if !strings.Contains(body, fmt.Sprintf(`relestd_requests_total{code="200",shard="%d"}`, s)) {
			t.Errorf("exposition lacks shard %d's request counter:\n%s", s, body)
		}
	}

	seriesRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)
	typeSeen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam := strings.Fields(rest)[0]
			if typeSeen[fam] {
				t.Errorf("family %s has more than one TYPE line", fam)
			}
			typeSeen[fam] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !seriesRE.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// clusterDelete issues a DELETE and returns the status and raw body.
func clusterDelete(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("closing body: %v", err)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestShardAvgRefused pins the avg merge contract: each shard's AVG is a
// ratio, not a stratum partial, and summing ratios across shards is ~S
// times the true average — so a multi-shard coordinator refuses avg with
// 422 rather than serve a silently wrong number. At shards=1 the merge
// is the identity and avg stays answerable.
func TestShardAvgRefused(t *testing.T) {
	_, base := startCluster(t, HarnessConfig{Shards: 2})
	setupClusterDataset(t, base, 500, 50)

	status, raw := postJSON(t, base+"/v1/estimate", server.EstimateRequest{
		Query: "avg(R1, a)", Synopsis: "main", Seed: 3,
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("avg at shards=2: %d %s, want 422", status, raw)
	}
	if !strings.Contains(string(raw), "avg does not decompose") {
		t.Errorf("avg refusal does not explain itself: %s", raw)
	}
	// sum and count still decompose and answer.
	status, raw = postJSON(t, base+"/v1/estimate", server.EstimateRequest{
		Query: "sum(R1, a)", Synopsis: "main", Seed: 3,
	})
	if status != http.StatusOK {
		t.Errorf("sum at shards=2: %d %s, want 200", status, raw)
	}

	_, single := startCluster(t, HarnessConfig{Shards: 1})
	setupClusterDataset(t, single, 500, 50)
	status, raw = postJSON(t, single+"/v1/estimate", server.EstimateRequest{
		Query: "avg(R1, a)", Synopsis: "main", Seed: 3,
	})
	if status != http.StatusOK {
		t.Fatalf("avg at shards=1: %d %s, want 200", status, raw)
	}
	var resp EstimateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Estimate.Value <= 0 {
		t.Errorf("single-shard avg = %v, want > 0", resp.Estimate.Value)
	}
}

// TestFanoutRollbackUnwedgesRetry pins the registration rollback: when a
// later shard refuses a fanned-out relation or synopsis push, the shards
// that already accepted are scrubbed, so the earlier failure leaves no
// partial state and the client's retry succeeds instead of wedging on
// 409s forever.
func TestFanoutRollbackUnwedgesRetry(t *testing.T) {
	h, base := startCluster(t, HarnessConfig{Shards: 2})
	shard0 := "http://" + h.Shards[0].Addr()
	shard1 := "http://" + h.Shards[1].Addr()
	const csv = "a\n1\n2\n3\n4\n5\n6\n7\n8\n"

	// Shard 1 already holds a relation named X (say, debris from an
	// earlier operator mistake), so the coordinator's push to it must 409.
	resp, err := http.Post(shard1+"/v1/relations/X", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("pre-seeding shard 1: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/relations/X", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("conflicted upload: %d, want 502", resp.StatusCode)
	}
	// The rollback scrubbed shard 0's slice.
	if status, raw := getBody(t, shard0+"/v1/relations"); strings.Contains(string(raw), `"X"`) {
		t.Fatalf("shard 0 still holds the rolled-back slice: %d %s", status, raw)
	}

	// Clear the debris and retry: the registration must go through clean.
	if status, raw := clusterDelete(t, shard1+"/v1/relations/X"); status != http.StatusOK {
		t.Fatalf("clearing shard 1 debris: %d %s", status, raw)
	}
	resp, err = http.Post(base+"/v1/relations/X", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("retried upload after rollback: %d, want 201", resp.StatusCode)
	}

	// Same contract for synopsis creation.
	status, raw := postJSON(t, shard1+"/v1/synopses/sx", server.SynopsisRequest{
		Kind: "static", Relations: map[string]int{"X": 2}, Seed: 1,
	})
	if status != http.StatusCreated {
		t.Fatalf("pre-seeding shard 1 synopsis: %d %s", status, raw)
	}
	status, raw = postJSON(t, base+"/v1/synopses/sx", server.SynopsisRequest{
		Kind: "static", Relations: map[string]int{"X": 4}, Seed: 1,
	})
	if status != http.StatusBadGateway {
		t.Fatalf("conflicted synopsis create: %d %s, want 502", status, raw)
	}
	if status, raw := getBody(t, shard0+"/v1/synopses"); strings.Contains(string(raw), `"sx"`) {
		t.Fatalf("shard 0 still holds the rolled-back synopsis: %d %s", status, raw)
	}
	if status, raw := clusterDelete(t, shard1+"/v1/synopses/sx"); status != http.StatusOK {
		t.Fatalf("clearing shard 1 synopsis debris: %d %s", status, raw)
	}
	status, raw = postJSON(t, base+"/v1/synopses/sx", server.SynopsisRequest{
		Kind: "static", Relations: map[string]int{"X": 4}, Seed: 1,
	})
	if status != http.StatusCreated {
		t.Fatalf("retried synopsis create after rollback: %d %s, want 201", status, raw)
	}
	status, raw = postJSON(t, base+"/v1/estimate", server.EstimateRequest{
		Query: "count(X)", Synopsis: "sx", Seed: 3,
	})
	if status != http.StatusOK {
		t.Errorf("estimate after recovered registration: %d %s", status, raw)
	}
}

// TestGenerateRollbackUnwedgesRetry pins atomic generation: a generate
// whose later output collides on a shard rolls its earlier outputs back
// from the coordinator registry and every shard, so the retry starts
// clean.
func TestGenerateRollbackUnwedgesRetry(t *testing.T) {
	h, base := startCluster(t, HarnessConfig{Shards: 2})
	shard0 := "http://" + h.Shards[0].Addr()
	shard1 := "http://" + h.Shards[1].Addr()

	resp, err := http.Post(shard1+"/v1/relations/R2", "text/csv", strings.NewReader("a,b\n1,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("pre-seeding shard 1: %d", resp.StatusCode)
	}

	gen := server.GenerateRequest{Kind: "zipf-pair", N: 200, Domain: 50, Seed: 7}
	status, raw := postJSON(t, base+"/v1/generate", gen)
	if status == http.StatusCreated {
		t.Fatalf("conflicted generate succeeded: %d %s", status, raw)
	}
	// Nothing half-registered anywhere: the coordinator registry and shard
	// 0 both come back empty.
	status, raw = getBody(t, base+"/v1/relations")
	if status != http.StatusOK || strings.Contains(string(raw), `"R1"`) {
		t.Fatalf("coordinator kept a half-registered generate output: %d %s", status, raw)
	}
	if status, raw := getBody(t, shard0+"/v1/relations"); strings.Contains(string(raw), `"R1"`) {
		t.Fatalf("shard 0 kept a half-registered slice: %d %s", status, raw)
	}

	if status, raw := clusterDelete(t, shard1+"/v1/relations/R2"); status != http.StatusOK {
		t.Fatalf("clearing shard 1 debris: %d %s", status, raw)
	}
	status, raw = postJSON(t, base+"/v1/generate", gen)
	if status != http.StatusCreated {
		t.Fatalf("retried generate after rollback: %d %s, want 201", status, raw)
	}
	status, raw = getBody(t, base+"/v1/relations")
	if !strings.Contains(string(raw), `"R1"`) || !strings.Contains(string(raw), `"R2"`) {
		t.Errorf("retried generate did not register both outputs: %d %s", status, raw)
	}
}

// TestStreamRefusedWhileDraining pins the drain contract on the stream
// endpoint: stream events mutate shard reservoirs, so a draining
// coordinator refuses them with 503 like every other mutating endpoint.
func TestStreamRefusedWhileDraining(t *testing.T) {
	h, base := startCluster(t, HarnessConfig{Shards: 1})
	h.Coord.draining.Store(true)
	status, raw := postJSON(t, base+"/v1/synopses/live/stream", server.StreamRequest{
		Op: "insert", Relation: "R1", Tuple: []string{"1", "2"},
	})
	if status != http.StatusServiceUnavailable {
		t.Errorf("stream while draining: %d %s, want 503", status, raw)
	}
}
