package cluster

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"relest/internal/bench"
	"relest/internal/sampling"
	"relest/internal/server"
	"relest/internal/workload"
)

// clusterProbes is the calibration trial count per shard count; 100
// trials of a nominal-0.95 CI put the acceptance band at [88, 99] — the
// same numbers the estimator's offline gate and the server's soak gate
// use.
const clusterProbes = 100

// clusterDataset mirrors the estimator calibration join experiment:
// zipf-pair, 2000 rows, domain n/20, both sides Z = 0.5, independent.
var clusterDataset = server.GenerateRequest{Kind: "zipf-pair", N: 2000, Domain: 100, Z1: 0.5, Z2: 0.5, Seed: 7}

// clusterTruth recomputes the dataset client-side for the exact join
// size; the coordinator generates from the same seed through the same
// generator.
func clusterTruth() float64 {
	rng := sampling.NewSource(clusterDataset.Seed).Rand(0)
	r1, r2 := workload.JoinPair(rng, workload.JoinPairSpec{
		Z1: clusterDataset.Z1, Z2: clusterDataset.Z2, Domain: clusterDataset.Domain,
		N1: clusterDataset.N, N2: clusterDataset.N, Correlation: workload.Independent,
	})
	return workload.ExactJoinSize(r1, "a", r2, "a")
}

// TestClusterCalibration holds the sharded tier to the library's own
// statistical gates at shards 1, 2 and 4: per-shard stratified draws and
// the stratified merge must leave the estimator unbiased (within ±5%)
// with CI coverage in [88, 99] for nominal 0.95. If the merge double
// counted, dropped a stratum, or mis-composed variances, these bands
// would catch it.
func TestClusterCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of estimates per shard count")
	}
	truth := clusterTruth()
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, base := startCluster(t, HarnessConfig{Shards: shards})
			status, raw := postJSON(t, base+"/v1/generate", clusterDataset)
			if status != http.StatusCreated {
				t.Fatalf("generate: %d %s", status, raw)
			}

			d := &workload.Driver{BaseURL: base}
			trials := make([]workload.Trial, clusterProbes)
			workload.Fanout(4, clusterProbes, func(i int) {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				name := fmt.Sprintf("probe-%d", i)
				status, raw, err := d.DoRetry(ctx, "/v1/synopses/"+name, server.SynopsisRequest{
					Kind: "static", Relations: map[string]int{"R1": 100, "R2": 100}, Seed: 1000 + int64(i),
				})
				if err != nil || status != http.StatusCreated {
					t.Errorf("probe %d synopsis: %d %s (%v)", i, status, raw, err)
					return
				}
				trials[i] = d.Estimate(ctx, server.EstimateRequest{
					Query: "count(join(R1, R2, on a = a))", Synopsis: name,
					Seed: 3, Variance: "analytic", Confidence: 0.95,
				})
			})

			var errs bench.ErrorStats
			var cov bench.Coverage
			for i, tr := range trials {
				if !tr.OK {
					t.Errorf("probe %d failed with status %d", i, tr.Status)
					continue
				}
				errs.Observe(tr.Value, truth)
				cov.Observe(tr.Lo, tr.Hi, truth)
			}
			if n := errs.N(); n != clusterProbes {
				t.Errorf("only %d/%d probes produced estimates", n, clusterProbes)
			}
			if bias := errs.Bias(); bias < -5 || bias > 5 {
				t.Errorf("bias = %+.2f%%, want within [-5, 5]", bias)
			}
			if rate := cov.Rate(); rate < 88 || rate > 99 {
				t.Errorf("coverage = %.1f%%, want within [88, 99] for nominal 0.95", rate)
			}
			t.Logf("shards=%d: ARE %.2f%%, bias %+.2f%%, coverage %.1f%%", shards, errs.ARE(), errs.Bias(), cov.Rate())
		})
	}
}
