package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/obs"
	"relest/internal/query"
	"relest/internal/relation"
	"relest/internal/server"
	"relest/internal/workload"
)

// statusClientClosedRequest mirrors the shard daemon's 499 for client
// cancellation.
const statusClientClosedRequest = 499

// EstimateResponse is the coordinator's estimate body: the shard daemon's
// response shape plus degradation fields. Both extras are omitempty, so a
// fully-answered response — in particular every shards=1 response — is
// byte-identical to a single node's.
type EstimateResponse struct {
	server.EstimateResponse
	// Partial reports that one or more shards missed the deadline and the
	// estimate covers the answered strata only, scaled up and with the
	// between-shard variance folded into a widened CI.
	Partial bool `json:"partial,omitempty"`
	// ShardsMissed lists the shard ids that missed, ascending.
	ShardsMissed []int `json:"shards_missed,omitempty"`
}

// BatchItemResult mirrors the shard daemon's batch item, carrying the
// coordinator's estimate shape.
type BatchItemResult struct {
	Status   int               `json:"status"`
	Estimate *EstimateResponse `json:"estimate,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// BatchEstimateResponse is the coordinator's batch body.
type BatchEstimateResponse struct {
	Results   []BatchItemResult `json:"results"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
}

// coordSchemas resolves relation names against the coordinator's
// registry so queries parse and bind exactly as they would on a shard
// (slices are schema-pinned to the full relation's layout).
type coordSchemas struct{ c *Coordinator }

func (p coordSchemas) Schema(name string) (*relation.Schema, bool) {
	p.c.mu.RLock()
	defer p.c.mu.RUnlock()
	cr := p.c.rels[name]
	if cr == nil {
		return nil, false
	}
	return cr.rel.Schema(), true
}

// keyPos resolves a relation to its shard-key column for shardability
// checks.
func (c *Coordinator) keyPos(rel string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cr := c.rels[rel]
	if cr == nil {
		return 0, false
	}
	return cr.keyCol, true
}

func coordReqMetric(status int) string {
	return obs.L(mCoordReq, "code", strconv.Itoa(status))
}

// validateEstimate runs every check the coordinator can decide without
// touching a shard, in the same order as the shard daemon so error
// statuses match single-node behaviour. On success it returns the
// normalized request (mode filled in).
func (c *Coordinator) validateEstimate(ctx context.Context, req server.EstimateRequest) (server.EstimateRequest, int, string) {
	if err := ctx.Err(); err != nil {
		return req, estimateErrorStatus(err), err.Error()
	}
	if req.Query == "" {
		return req, http.StatusBadRequest, "no query given"
	}
	if req.Synopsis == "" {
		return req, http.StatusBadRequest, "no synopsis given"
	}
	c.mu.RLock()
	syn := c.syns[req.Synopsis]
	c.mu.RUnlock()
	if syn == nil {
		return req, http.StatusNotFound, fmt.Sprintf("no synopsis %q", req.Synopsis)
	}
	if req.Mode == "" {
		req.Mode = "plain"
	}
	if req.Mode != "plain" {
		return req, http.StatusBadRequest, fmt.Sprintf("the coordinator supports plain mode only (got %q); sequential and deadline sampling run on single nodes", req.Mode)
	}
	if req.TierPolicy != "" || req.Precision > 0 {
		return req, http.StatusBadRequest, "the coordinator supports the sample tier only; tier_policy and precision run on single nodes"
	}
	st, err := query.Parse(req.Query, coordSchemas{c})
	if err != nil {
		return req, http.StatusBadRequest, err.Error()
	}
	if st.IsDistinct() || st.Agg == "group" {
		return req, http.StatusBadRequest, "the estimation service supports count, sum and avg queries"
	}
	if c.cfg.Spec.Shards > 1 {
		// AVG is a ratio of two estimates, not a linear aggregate: each
		// shard answers its own sum/count ratio, and summing ratios across
		// strata is ~S times the true average — a silently wrong number,
		// which the degradation contract forbids. Refused like a
		// non-shardable join until the protocol carries the underlying sum
		// and count partials separately.
		if st.Agg == "avg" {
			return req, http.StatusUnprocessableEntity, "avg does not decompose into a per-shard sum (each shard's ratio is not a stratum partial); run avg against a single node or shards=1"
		}
		poly, err := algebra.Normalize(st.Expr)
		if err != nil {
			return req, http.StatusUnprocessableEntity, err.Error()
		}
		if err := checkShardable(poly, c.keyPos); err != nil {
			return req, http.StatusUnprocessableEntity, err.Error()
		}
	}
	return req, 0, ""
}

// estimateErrorStatus mirrors the shard daemon's mapping: deadline expiry
// 504, client cancellation 499.
func estimateErrorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusUnprocessableEntity
	}
}

// shardOutcome is one shard's answer to a fanned-out estimate.
type shardOutcome struct {
	resp   *server.EstimateResponse
	status int
	errMsg string
	missed bool
}

// fanEstimate issues the per-shard sub-requests for one validated
// estimate and collects the outcomes. Each shard gets 90% of the
// remaining request budget — the same margin deadline-mode estimation
// keeps for itself — so the coordinator always has time to merge and
// answer even when a shard runs to the wire.
func (c *Coordinator) fanEstimate(ctx context.Context, req server.EstimateRequest) ([]shardOutcome, int, string) {
	drivers := c.shardDrivers()
	n := len(drivers)

	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(c.cfg.RequestTimeout)
	}
	shardBudget := time.Until(deadline) * 9 / 10
	if shardBudget <= 0 {
		return nil, http.StatusGatewayTimeout, "request budget exhausted before fanout"
	}

	c.col.Add(mFanout, float64(n))
	outs := make([]shardOutcome, n)
	workload.Fanout(n, n, func(i int) {
		sreq := req
		sreq.Seed = shardSeed(req.Seed, i)
		sreq.TimeoutMS = max(1, shardBudget.Milliseconds())
		sctx, cancel := context.WithTimeout(ctx, shardBudget)
		defer cancel()
		start := time.Now()
		status, raw, err := drivers[i].DoRetry(sctx, "/v1/estimate", sreq)
		c.col.Observe(shardLabel(mShardLatency, i), time.Since(start).Seconds())
		outs[i] = classifyOutcome(status, raw, err)
	})
	return outs, 0, ""
}

// classifyOutcome sorts a shard reply into answered / deadline-missed /
// systemic failure. Timeouts (transport-level or a shard's own 504/499)
// degrade the cluster answer; anything else — a 4xx, a refused
// connection — is a real fault the client must see, never paper over.
func classifyOutcome(status int, raw []byte, err error) shardOutcome {
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errIsTimeout(err) {
			return shardOutcome{missed: true}
		}
		return shardOutcome{status: http.StatusBadGateway, errMsg: err.Error()}
	}
	switch status {
	case http.StatusOK:
		var resp server.EstimateResponse
		if jsonErr := json.Unmarshal(raw, &resp); jsonErr != nil {
			return shardOutcome{status: http.StatusBadGateway, errMsg: fmt.Sprintf("undecodable shard response: %v", jsonErr)}
		}
		return shardOutcome{resp: &resp, status: status}
	case http.StatusGatewayTimeout, statusClientClosedRequest:
		return shardOutcome{missed: true}
	default:
		var e server.ErrorResponse
		msg := string(raw)
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return shardOutcome{status: status, errMsg: msg}
	}
}

// errIsTimeout reports transport-level timeouts (net.Error with Timeout,
// or a context deadline wrapped by net/http).
func errIsTimeout(err error) bool {
	type timeout interface{ Timeout() bool }
	for err != nil {
		if t, ok := err.(timeout); ok && t.Timeout() {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// mergeOutcomes composes the shard partials into the cluster response.
// All shards answered → the plain stratified sum. Some missed → the
// two-stage degraded estimator with its widened CI, partial: true and the
// missed shard ids on the wire; the one thing never served is a silently
// wrong number.
func (c *Coordinator) mergeOutcomes(req server.EstimateRequest, outs []shardOutcome) (int, any) {
	var missed []int
	var parts []estimator.Partial
	var answered []*server.EstimateResponse
	for i, o := range outs {
		if o.missed {
			missed = append(missed, i)
			c.col.Add(shardLabel(mDeadlineMiss, i), 1)
			continue
		}
		if o.resp == nil {
			return o.status, server.ErrorResponse{Error: fmt.Sprintf("shard %d: %s", i, o.errMsg)}
		}
		p := estimator.Partial{Value: o.resp.Estimate.Value, Variance: math.NaN(), Method: estimator.VarNone, Terms: o.resp.Estimate.Terms}
		if o.resp.Estimate.Variance != nil {
			p.Variance = *o.resp.Estimate.Variance
			p.Method = estimator.VarAnalytic
		}
		parts = append(parts, p)
		answered = append(answered, o.resp)
	}
	if len(answered) == 0 {
		return http.StatusGatewayTimeout, server.ErrorResponse{Error: "every shard missed the deadline"}
	}

	est, rep, err := estimator.MergeStratified(parts, len(outs), estimator.Options{Confidence: req.Confidence})
	if err != nil {
		return http.StatusInternalServerError, server.ErrorResponse{Error: err.Error()}
	}

	// The wire variance-method string is the shards' own when they agree
	// (the shards=1 byte-identity path), "mixed" otherwise.
	methodStr := answered[0].Estimate.VarianceMethod
	tier := answered[0].Tier
	samples := map[string]int{}
	rounds := 0
	for _, a := range answered {
		if a.Estimate.VarianceMethod != methodStr {
			methodStr = "mixed"
		}
		if a.Tier != tier {
			tier = "mixed"
		}
		for k, v := range a.SamplesConsumed {
			samples[k] += v
		}
		rounds += a.Rounds
	}

	result := server.EstimateResult{
		Value:          est.Value,
		StdErr:         est.StdErr,
		Lo:             est.Lo,
		Hi:             est.Hi,
		Confidence:     est.Confidence,
		VarianceMethod: methodStr,
		Terms:          est.Terms,
	}
	if est.VarianceMethod != estimator.VarNone && !math.IsNaN(est.Variance) {
		v := est.Variance
		result.Variance = &v
	}
	resp := EstimateResponse{
		EstimateResponse: server.EstimateResponse{
			Query:           req.Query,
			Synopsis:        req.Synopsis,
			Mode:            req.Mode,
			Estimate:        result,
			SamplesConsumed: samples,
			Rounds:          rounds,
			Tier:            tier,
		},
	}
	if rep.Partial {
		resp.Partial = true
		sort.Ints(missed)
		resp.ShardsMissed = missed
		c.col.Add(mPartialResp, 1)
	}
	return http.StatusOK, resp
}

// requestCtx applies the effective timeout: the client's timeout_ms when
// given (clamped to the server cap), the coordinator default otherwise.
func (c *Coordinator) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := c.cfg.RequestTimeout
	if timeoutMS > 0 {
		if t := time.Duration(timeoutMS) * time.Millisecond; t < d {
			d = t
		}
	}
	return context.WithTimeout(r.Context(), d)
}

func (c *Coordinator) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if c.refuseDraining(w) {
		c.col.Add(coordReqMetric(http.StatusServiceUnavailable), 1)
		return
	}
	var req server.EstimateRequest
	if !decodeBody(w, r, &req) {
		c.col.Add(coordReqMetric(http.StatusBadRequest), 1)
		return
	}
	ctx, cancel := c.requestCtx(r, req.TimeoutMS)
	defer cancel()
	status, body := c.doEstimate(ctx, req)
	c.col.Add(coordReqMetric(status), 1)
	_ = writeJSON(w, status, body)
}

func (c *Coordinator) doEstimate(ctx context.Context, req server.EstimateRequest) (int, any) {
	req, status, msg := c.validateEstimate(ctx, req)
	if status != 0 {
		return status, server.ErrorResponse{Error: msg}
	}
	outs, status, msg := c.fanEstimate(ctx, req)
	if status != 0 {
		return status, server.ErrorResponse{Error: msg}
	}
	//lint:ignore detflow the shard deadline budget decides only WHICH strata answered; the merge itself sums per-shard partials in shard-index order, bit-identical for any fixed answered set
	return c.mergeOutcomes(req, outs)
}

// handleBatchEstimate validates every query locally, then issues exactly
// one batch sub-request per shard carrying all fan-worthy items — one
// admission slot per shard per batch, however many queries ride along —
// and merges per item.
func (c *Coordinator) handleBatchEstimate(w http.ResponseWriter, r *http.Request) {
	if c.refuseDraining(w) {
		return
	}
	var breq server.BatchEstimateRequest
	if !decodeBody(w, r, &breq) {
		return
	}
	if len(breq.Queries) == 0 {
		_ = writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(breq.Queries) > c.cfg.MaxBatchQueries {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds the %d-query limit", len(breq.Queries), c.cfg.MaxBatchQueries))
		return
	}
	ctx, cancel := c.requestCtx(r, breq.TimeoutMS)
	defer cancel()

	results := make([]BatchItemResult, len(breq.Queries))
	var fanIdx []int // batch positions that passed validation, in order
	normalized := make([]server.EstimateRequest, len(breq.Queries))
	for i, q := range breq.Queries {
		nq, status, msg := c.validateEstimate(ctx, q)
		if status != 0 {
			results[i] = BatchItemResult{Status: status, Error: msg}
			continue
		}
		normalized[i] = nq
		fanIdx = append(fanIdx, i)
	}

	if len(fanIdx) > 0 {
		drivers := c.shardDrivers()
		n := len(drivers)
		deadline, ok := ctx.Deadline()
		if !ok {
			deadline = time.Now().Add(c.cfg.RequestTimeout)
		}
		shardBudget := time.Until(deadline) * 9 / 10
		if shardBudget <= 0 {
			for _, i := range fanIdx {
				results[i] = BatchItemResult{Status: http.StatusGatewayTimeout, Error: "request budget exhausted before fanout"}
			}
		} else {
			c.col.Add(mFanout, float64(n))
			type shardBatch struct {
				resp   *server.BatchEstimateResponse
				errMsg string
				missed bool
			}
			shardOuts := make([]shardBatch, n)
			workload.Fanout(n, n, func(s int) {
				sub := server.BatchEstimateRequest{
					Queries:   make([]server.EstimateRequest, len(fanIdx)),
					TimeoutMS: max(1, shardBudget.Milliseconds()),
				}
				for k, i := range fanIdx {
					sreq := normalized[i]
					sreq.Seed = shardSeed(sreq.Seed, s)
					sreq.TimeoutMS = 0 // the batch budget governs
					sub.Queries[k] = sreq
				}
				sctx, cancel := context.WithTimeout(ctx, shardBudget)
				defer cancel()
				start := time.Now()
				status, raw, err := drivers[s].DoRetry(sctx, "/v1/estimate/batch", sub)
				c.col.Observe(shardLabel(mShardLatency, s), time.Since(start).Seconds())
				switch {
				case err != nil && (errors.Is(err, context.DeadlineExceeded) || errIsTimeout(err)):
					shardOuts[s] = shardBatch{missed: true}
				case err != nil:
					shardOuts[s] = shardBatch{errMsg: err.Error()}
				case status != http.StatusOK:
					shardOuts[s] = shardBatch{errMsg: fmt.Sprintf("shard batch status %d: %s", status, raw)}
				default:
					var resp server.BatchEstimateResponse
					if jsonErr := json.Unmarshal(raw, &resp); jsonErr != nil {
						shardOuts[s] = shardBatch{errMsg: jsonErr.Error()}
					} else if len(resp.Results) != len(fanIdx) {
						shardOuts[s] = shardBatch{errMsg: fmt.Sprintf("shard returned %d results for %d queries", len(resp.Results), len(fanIdx))}
					} else {
						shardOuts[s] = shardBatch{resp: &resp}
					}
				}
			})

			for k, i := range fanIdx {
				outs := make([]shardOutcome, n)
				systemic := ""
				for s := range shardOuts {
					switch {
					case shardOuts[s].missed:
						outs[s] = shardOutcome{missed: true}
					case shardOuts[s].resp == nil:
						systemic = fmt.Sprintf("shard %d: %s", s, shardOuts[s].errMsg)
					default:
						item := shardOuts[s].resp.Results[k]
						if item.Estimate != nil {
							outs[s] = shardOutcome{resp: item.Estimate, status: item.Status}
						} else if item.Status == http.StatusGatewayTimeout || item.Status == statusClientClosedRequest {
							outs[s] = shardOutcome{missed: true}
						} else {
							outs[s] = shardOutcome{status: item.Status, errMsg: item.Error}
						}
					}
				}
				if systemic != "" {
					results[i] = BatchItemResult{Status: http.StatusBadGateway, Error: systemic}
					continue
				}
				//lint:ignore detflow the shard deadline budget decides only WHICH strata answered; the merge itself sums per-shard partials in shard-index order, bit-identical for any fixed answered set
				status, body := c.mergeOutcomes(normalized[i], outs)
				if status == http.StatusOK {
					resp := body.(EstimateResponse)
					results[i] = BatchItemResult{Status: status, Estimate: &resp}
				} else {
					results[i] = BatchItemResult{Status: status, Error: body.(server.ErrorResponse).Error}
				}
			}
		}
	}

	out := BatchEstimateResponse{Results: results}
	for _, res := range results {
		if res.Status == http.StatusOK {
			out.Succeeded++
		} else {
			out.Failed++
		}
	}
	_ = writeJSON(w, http.StatusOK, out)
}
