package cluster

import (
	"bytes"
	"net/http"
	"os"
	"testing"

	"relest/internal/server"
)

// TestOneShardGoldenByteIdentity pins the tentpole's equivalence
// contract at its strongest: a one-shard cluster — full scatter-gather,
// CSV slice push, derived seed, stratified merge and all — answers the
// golden estimate request with the exact bytes committed by the
// single-node daemon's golden test, at every worker count. Nothing in
// the cluster path is allowed to perturb a single float.
func TestOneShardGoldenByteIdentity(t *testing.T) {
	want, err := os.ReadFile("../server/testdata/estimate_count.golden.json")
	if err != nil {
		t.Fatalf("%v (the single-node golden must exist first)", err)
	}

	_, base := startCluster(t, HarnessConfig{Shards: 1})
	setupClusterDataset(t, base, 2000, 200)

	for _, workers := range []int{1, 4} {
		status, raw := postJSON(t, base+"/v1/estimate", server.EstimateRequest{
			Query:    "count(join(R1, R2, on a = a))",
			Synopsis: "main",
			Seed:     3,
			Workers:  workers,
		})
		if status != http.StatusOK {
			t.Fatalf("workers=%d: %d %s", workers, status, raw)
		}
		if !bytes.Equal(raw, want) {
			t.Errorf("workers=%d: cluster response differs from the single-node golden:\ncluster: %s\ngolden:  %s", workers, raw, want)
		}
	}
}
