package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"relest/internal/obs"
	"relest/internal/relation"
	"relest/internal/server"
	"relest/internal/workload"
)

// Config configures a Coordinator.
type Config struct {
	// Addr is the listen address (default 127.0.0.1:0).
	Addr string
	// ShardAddrs are the shard nodes' base URLs, one per shard, indexed
	// by shard id. Length must equal Spec.Shards.
	ShardAddrs []string
	// Spec fixes the shard partition.
	Spec ShardSpec
	// DefaultShardKey names the shard-key column used for relations
	// registered without an explicit ?shard_key (empty = first column).
	DefaultShardKey string
	// RequestTimeout caps each request's wall clock (default 30s). Shard
	// sub-requests get 90% of the remaining budget — the same margin
	// deadline-mode estimation keeps for assembling its response.
	RequestTimeout time.Duration
	// MaxBatchQueries caps batch sizes (default 256).
	MaxBatchQueries int
	// Collector receives the coordinator's metrics (default: a fresh
	// collector; never share one with a shard — the merged /metrics view
	// distinguishes shards by label instead).
	Collector *obs.Collector
	// Client is the HTTP client for shard calls (default
	// http.DefaultClient).
	Client *http.Client
}

// coordRel is the coordinator's source-of-truth record of one relation:
// the full relation plus its precomputed per-shard row slices, which
// synopsis allocation and rebalance pushes re-derive placements from.
type coordRel struct {
	rel         *relation.Relation
	keyCol      int
	rowsByShard [][]int
}

// coordSyn records a synopsis's creation spec: the client's request plus
// the exact per-shard requests pushed at creation. A rebalance replays
// perShard[s] verbatim on the target node, which rebuilds the shard's
// sample byte-identically (same slice, same derived seed).
type coordSyn struct {
	kind     string
	req      server.SynopsisRequest
	perShard []server.SynopsisRequest
}

// Coordinator is the cluster's front door: it owns the shard routing
// table and the source-of-truth dataset, fans estimation requests out to
// the shard nodes, and merges their partials into stratified cluster
// estimates.
type Coordinator struct {
	cfg      Config
	col      *obs.Collector
	httpSrv  *http.Server
	ln       net.Listener
	draining atomic.Bool

	mu      sync.RWMutex
	drivers []*workload.Driver
	rels    map[string]*coordRel
	syns    map[string]*coordSyn

	// regMu serializes registrations and rebalances, which push state to
	// shards outside mu.
	regMu sync.Mutex
}

// New builds a Coordinator; Start binds and serves.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.Spec.validate(); err != nil {
		return nil, err
	}
	if len(cfg.ShardAddrs) != cfg.Spec.Shards {
		return nil, fmt.Errorf("cluster: %d shard addrs for %d shards", len(cfg.ShardAddrs), cfg.Spec.Shards)
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxBatchQueries <= 0 {
		cfg.MaxBatchQueries = 256
	}
	if cfg.Collector == nil {
		cfg.Collector = obs.NewCollector()
	}
	c := &Coordinator{
		cfg:  cfg,
		col:  cfg.Collector,
		rels: map[string]*coordRel{},
		syns: map[string]*coordSyn{},
	}
	for i, addr := range cfg.ShardAddrs {
		if addr == "" {
			return nil, fmt.Errorf("cluster: shard %d has an empty address", i)
		}
		c.drivers = append(c.drivers, c.newDriver(addr))
	}
	return c, nil
}

func (c *Coordinator) newDriver(addr string) *workload.Driver {
	return &workload.Driver{BaseURL: addr, Client: c.cfg.Client}
}

// Start binds the listener and serves in the background.
func (c *Coordinator) Start() error {
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return err
	}
	c.ln = ln
	c.httpSrv = &http.Server{Handler: c.routes()}
	// The accept loop is request-level concurrency only: estimation work
	// happens on the shard nodes, whose reductions run through
	// internal/parallel as always.
	go func() {
		_ = c.httpSrv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43521".
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Handler exposes the routes without a listener (tests).
func (c *Coordinator) Handler() http.Handler { return c.routes() }

// Collector returns the coordinator's own metrics collector.
func (c *Coordinator) Collector() *obs.Collector { return c.col }

// Shutdown drains: new requests are refused while in-flight ones finish.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.draining.Store(true)
	if c.httpSrv == nil {
		return nil
	}
	return c.httpSrv.Shutdown(ctx)
}

// shardDrivers snapshots the routing table; rebalance swaps entries
// under mu, so fanouts work off a stable copy.
func (c *Coordinator) shardDrivers() []*workload.Driver {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*workload.Driver(nil), c.drivers...)
}

func (c *Coordinator) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/relations/{name}", c.handleUploadRelation)
	mux.HandleFunc("GET /v1/relations", c.handleListRelations)
	mux.HandleFunc("POST /v1/generate", c.handleGenerate)
	mux.HandleFunc("POST /v1/synopses/{name}", c.handleCreateSynopsis)
	mux.HandleFunc("GET /v1/synopses", c.handleListSynopses)
	mux.HandleFunc("POST /v1/synopses/{name}/stream", c.handleStream)
	mux.HandleFunc("POST /v1/estimate", c.handleEstimate)
	mux.HandleFunc("POST /v1/estimate/batch", c.handleBatchEstimate)
	mux.HandleFunc("POST /v1/cluster/rebalance", c.handleRebalance)
	mux.HandleFunc("GET /v1/cluster", c.handleTopology)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	return mux
}

// handleUploadRelation registers the CSV body cluster-wide: the
// coordinator keeps the full relation as the rebalance source of truth
// and pushes each shard its slice, schema-pinned so every shard ends up
// with an identical layout.
func (c *Coordinator) handleUploadRelation(w http.ResponseWriter, r *http.Request) {
	if c.refuseDraining(w) {
		return
	}
	name := r.PathValue("name")
	if !validName(name) {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid relation name %q", name))
		return
	}
	rel, err := relation.ImportCSVOptions(name, r.Body, relation.ImportOptions{MaxBytes: 64 << 20})
	if err != nil {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("importing CSV: %v", err))
		return
	}
	status, body := c.registerRelation(r.Context(), rel, r.URL.Query().Get("shard_key"))
	_ = writeJSON(w, status, body)
}

// handleGenerate synthesizes a dataset exactly as a single node would
// (same generator, same seed discipline) and registers every output
// relation cluster-wide.
func (c *Coordinator) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if c.refuseDraining(w) {
		return
	}
	var req server.GenerateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	outputs, err := server.GenerateDataset(req)
	if err != nil {
		_ = writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	infos := make([]server.RelationInfo, 0, len(outputs))
	var registered []string
	for _, rel := range outputs {
		status, body := c.registerRelation(r.Context(), rel, "")
		if status != http.StatusCreated {
			// Atomic generate: the outputs already committed (coordinator
			// registry and every shard) roll back, so a retry starts clean
			// instead of hitting 409s on the relations that made it.
			c.unregisterRelations(registered)
			_ = writeJSON(w, status, body)
			return
		}
		info, ok := body.(server.RelationInfo)
		if !ok {
			c.unregisterRelations(registered)
			_ = writeError(w, http.StatusInternalServerError, "internal: unexpected registration body shape")
			return
		}
		registered = append(registered, rel.Name())
		infos = append(infos, info)
	}
	_ = writeJSON(w, http.StatusCreated, infos)
}

// unregisterRelations best-effort removes fully registered relations —
// a failed generate's earlier outputs — from the coordinator registry
// and every shard. A relation some synopsis already references is left
// in place (the shard nodes refuse that delete too); regMu serializes
// the removal against concurrent registrations and rebalances, which
// read the registry while pushing to shards.
func (c *Coordinator) unregisterRelations(names []string) {
	if len(names) == 0 {
		return
	}
	c.regMu.Lock()
	defer c.regMu.Unlock()
	c.mu.Lock()
	drivers := append([]*workload.Driver(nil), c.drivers...)
	removed := names[:0:0]
	for _, name := range names {
		referenced := false
		for _, syn := range c.syns {
			if _, uses := syn.req.Relations[name]; uses {
				referenced = true
				break
			}
		}
		if !referenced {
			delete(c.rels, name)
			removed = append(removed, name)
		}
	}
	c.mu.Unlock()
	for _, name := range removed {
		c.rollbackPush(drivers, "/v1/relations/"+url.PathEscape(name))
	}
}

// registerRelation slices rel by the shard spec, pushes each shard its
// slice, and commits the relation to the routing registry.
func (c *Coordinator) registerRelation(ctx context.Context, rel *relation.Relation, keyName string) (int, any) {
	if keyName == "" {
		keyName = c.cfg.DefaultShardKey
	}
	keyCol := 0
	if keyName != "" {
		if keyCol = rel.Schema().ColumnIndex(keyName); keyCol < 0 {
			return http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("relation %q has no shard-key column %q", rel.Name(), keyName)}
		}
	}
	if c.cfg.Spec.Mode == ModeRange && rel.Schema().Column(keyCol).Kind != relation.KindInt {
		return http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("range sharding needs an int shard key; %q column %q is %s", rel.Name(), rel.Schema().Column(keyCol).Name, rel.Schema().Column(keyCol).Kind)}
	}

	c.regMu.Lock()
	defer c.regMu.Unlock()
	c.mu.RLock()
	_, dup := c.rels[rel.Name()]
	drivers := append([]*workload.Driver(nil), c.drivers...)
	c.mu.RUnlock()
	if dup {
		return http.StatusConflict, server.ErrorResponse{Error: fmt.Sprintf("relation %q already registered", rel.Name())}
	}

	rowsByShard := make([][]int, c.cfg.Spec.Shards)
	for s := range rowsByShard {
		rows, err := sliceRows(rel, keyCol, c.cfg.Spec, s)
		if err != nil {
			return http.StatusBadRequest, server.ErrorResponse{Error: err.Error()}
		}
		rowsByShard[s] = rows
	}
	for s, d := range drivers {
		if status, msg := pushSlice(ctx, d, rel, rowsByShard[s]); status != http.StatusCreated {
			c.rollbackPush(drivers[:s], "/v1/relations/"+url.PathEscape(rel.Name()))
			return http.StatusBadGateway, server.ErrorResponse{Error: fmt.Sprintf("shard %d refused slice of %q: %s", s, rel.Name(), msg)}
		}
	}

	c.mu.Lock()
	c.rels[rel.Name()] = &coordRel{rel: rel, keyCol: keyCol, rowsByShard: rowsByShard}
	c.mu.Unlock()
	return http.StatusCreated, server.RelationInfo{Name: rel.Name(), Rows: rel.Len(), Schema: rel.Schema().String()}
}

// rollbackPush best-effort DELETEs path from the shards that accepted a
// fanned-out registration before a later shard refused it, so a failed
// registration leaves no partial state behind and a client retry is not
// wedged on 409s from the half-populated shards. It runs on its own
// short background context — the request's context may be the very thing
// that failed the fanout — and swallows per-shard errors: a shard that
// cannot clean up now surfaces as a 409 on the retry, which the operator
// would have to resolve either way.
func (c *Coordinator) rollbackPush(drivers []*workload.Driver, path string) {
	if len(drivers) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, d := range drivers {
		_, _, _ = d.Delete(ctx, path)
	}
}

// pushSlice uploads one shard's slice of rel, schema-pinned.
func pushSlice(ctx context.Context, d *workload.Driver, rel *relation.Relation, rows []int) (int, string) {
	slice := rel.Subset(rel.Name(), rows)
	var buf bytes.Buffer
	if err := relation.ExportCSV(slice, &buf); err != nil {
		return 0, err.Error()
	}
	path := "/v1/relations/" + url.PathEscape(rel.Name()) + "?schema=" + url.QueryEscape(rel.Schema().String())
	status, raw, err := d.DoRaw(ctx, path, "text/csv", buf.Bytes())
	if err != nil {
		return status, err.Error()
	}
	if status != http.StatusCreated {
		return status, string(raw)
	}
	return status, ""
}

func (c *Coordinator) handleListRelations(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	infos := make([]server.RelationInfo, 0, len(c.rels))
	for name, cr := range c.rels {
		infos = append(infos, server.RelationInfo{Name: name, Rows: cr.rel.Len(), Schema: cr.rel.Schema().String()})
	}
	c.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	_ = writeJSON(w, http.StatusOK, infos)
}

// handleCreateSynopsis fans a synopsis creation out: each shard draws its
// own slice's sample with a shard-derived seed and a proportional share
// of the requested sample size, so the shard samples together form a
// stratified design over the whole relation.
func (c *Coordinator) handleCreateSynopsis(w http.ResponseWriter, r *http.Request) {
	if c.refuseDraining(w) {
		return
	}
	name := r.PathValue("name")
	if !validName(name) {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid synopsis name %q", name))
		return
	}
	var req server.SynopsisRequest
	if !decodeBody(w, r, &req) {
		return
	}
	status, body := c.createSynopsis(r.Context(), name, req)
	_ = writeJSON(w, status, body)
}

func (c *Coordinator) createSynopsis(ctx context.Context, name string, req server.SynopsisRequest) (int, any) {
	if req.Kind != "static" && req.Kind != "incremental" {
		return http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("unknown synopsis kind %q (want static or incremental)", req.Kind)}
	}
	if len(req.Relations) == 0 {
		return http.StatusBadRequest, server.ErrorResponse{Error: "synopsis needs at least one relation"}
	}
	c.regMu.Lock()
	defer c.regMu.Unlock()
	c.mu.RLock()
	_, dup := c.syns[name]
	drivers := append([]*workload.Driver(nil), c.drivers...)
	relNames := make([]string, 0, len(req.Relations))
	rels := map[string]*coordRel{}
	for rn := range req.Relations {
		relNames = append(relNames, rn)
		rels[rn] = c.rels[rn]
	}
	c.mu.RUnlock()
	if dup {
		return http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("synopsis %q already exists", name)}
	}
	sort.Strings(relNames)
	for _, rn := range relNames {
		if rels[rn] == nil {
			return http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("no relation %q registered", rn)}
		}
	}

	perShard := make([]server.SynopsisRequest, c.cfg.Spec.Shards)
	for s := range perShard {
		sreq := server.SynopsisRequest{Kind: req.Kind, Relations: map[string]int{}, Seed: shardSeed(req.Seed, s)}
		if req.Kind == "incremental" {
			cap := req.Capacity
			if cap <= 0 {
				cap = 1000
			}
			sreq.Capacity = max(1, cap/c.cfg.Spec.Shards)
			for _, rn := range relNames {
				sreq.Relations[rn] = 0
			}
		} else {
			for _, rn := range relNames {
				sizes := make([]int, c.cfg.Spec.Shards)
				for i, rows := range rels[rn].rowsByShard {
					sizes[i] = len(rows)
				}
				sreq.Relations[rn] = proportionalAlloc(sizes, req.Relations[rn])[s]
			}
		}
		perShard[s] = sreq
	}
	for s, d := range drivers {
		status, raw, err := d.DoRetry(ctx, "/v1/synopses/"+url.PathEscape(name), perShard[s])
		if err != nil {
			c.rollbackPush(drivers[:s], "/v1/synopses/"+url.PathEscape(name))
			return http.StatusBadGateway, server.ErrorResponse{Error: fmt.Sprintf("shard %d synopsis push: %v", s, err)}
		}
		if status != http.StatusCreated {
			c.rollbackPush(drivers[:s], "/v1/synopses/"+url.PathEscape(name))
			return http.StatusBadGateway, server.ErrorResponse{Error: fmt.Sprintf("shard %d refused synopsis %q: %s", s, name, raw)}
		}
	}

	c.mu.Lock()
	c.syns[name] = &coordSyn{kind: req.Kind, req: req, perShard: perShard}
	c.mu.Unlock()
	info := server.SynopsisInfo{Name: name, Kind: req.Kind, Relations: map[string]int{}}
	for _, rn := range relNames {
		for s := range perShard {
			info.Relations[rn] += min(perShard[s].Relations[rn], len(rels[rn].rowsByShard[s]))
		}
	}
	return http.StatusCreated, info
}

// proportionalAlloc splits a total sample size across shard strata in
// proportion to slice sizes (largest-remainder rounding, deterministic
// ties by shard index), with a floor of one row per shard — shard nodes
// refuse zero-size draws, and they clamp an over-ask on an empty slice to
// an empty (census) sample themselves.
func proportionalAlloc(sizes []int, total int) []int {
	n := 0
	for _, s := range sizes {
		n += s
	}
	out := make([]int, len(sizes))
	if total < 1 {
		total = 1
	}
	if n == 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	type rem struct {
		idx  int
		frac int
	}
	rems := make([]rem, len(sizes))
	used := 0
	for i, s := range sizes {
		out[i] = total * s / n
		rems[i] = rem{idx: i, frac: total * s % n}
		used += out[i]
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].idx < rems[j].idx
	})
	for k := 0; used < total && k < len(rems); k++ {
		out[rems[k].idx]++
		used++
	}
	for i := range out {
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// handleListSynopses merges the shards' synopsis listings: per-relation
// sample sizes sum across shards, and an eviction anywhere is surfaced.
func (c *Coordinator) handleListSynopses(w http.ResponseWriter, r *http.Request) {
	drivers := c.shardDrivers()
	merged := map[string]*server.SynopsisInfo{}
	for s, d := range drivers {
		status, raw, err := d.Get(r.Context(), "/v1/synopses")
		if err != nil || status != http.StatusOK {
			_ = writeError(w, http.StatusBadGateway, fmt.Sprintf("shard %d synopsis listing failed", s))
			return
		}
		var infos []server.SynopsisInfo
		if err := json.Unmarshal(raw, &infos); err != nil {
			_ = writeError(w, http.StatusBadGateway, fmt.Sprintf("shard %d synopsis listing: %v", s, err))
			return
		}
		for _, info := range infos {
			m := merged[info.Name]
			if m == nil {
				m = &server.SynopsisInfo{Name: info.Name, Kind: info.Kind, Tenant: info.Tenant, Relations: map[string]int{}}
				merged[info.Name] = m
			}
			for rn, sz := range info.Relations {
				m.Relations[rn] += sz
			}
			m.Evicted = m.Evicted || info.Evicted
		}
	}
	out := make([]server.SynopsisInfo, 0, len(merged))
	for _, m := range merged {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	_ = writeJSON(w, http.StatusOK, out)
}

// handleStream routes one insert/delete event to the shard owning the
// tuple's key and forwards it; the response is the owning shard's view of
// the synopsis.
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	// Stream events mutate shard reservoirs; the drain contract refuses
	// them like every other mutating endpoint.
	if c.refuseDraining(w) {
		return
	}
	name := r.PathValue("name")
	var req server.StreamRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.RLock()
	syn := c.syns[name]
	cr := c.rels[req.Relation]
	c.mu.RUnlock()
	if syn == nil {
		_ = writeError(w, http.StatusNotFound, fmt.Sprintf("no synopsis %q", name))
		return
	}
	if cr == nil {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("no relation %q registered", req.Relation))
		return
	}
	if cr.keyCol >= len(req.Tuple) {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("tuple has %d values; shard key is column %d", len(req.Tuple), cr.keyCol))
		return
	}
	v, err := relation.ParseValue(req.Tuple[cr.keyCol], cr.rel.Schema().Column(cr.keyCol).Kind)
	if err != nil {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("parsing shard key: %v", err))
		return
	}
	shard, err := c.cfg.Spec.Route(v)
	if err != nil {
		_ = writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	drivers := c.shardDrivers()
	status, raw, err := drivers[shard].DoRetry(r.Context(), "/v1/synopses/"+url.PathEscape(name)+"/stream", req)
	if err != nil {
		_ = writeError(w, http.StatusBadGateway, fmt.Sprintf("shard %d stream: %v", shard, err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
}

// RebalanceRequest moves one shard's data to another node.
type RebalanceRequest struct {
	// Shard is the shard id to move.
	Shard int `json:"shard"`
	// Addr is the target node's base URL. The target must be empty of
	// this cluster's relations (a fresh relestd).
	Addr string `json:"addr"`
}

// RebalanceResponse summarizes a completed move.
type RebalanceResponse struct {
	Shard     int    `json:"shard"`
	Addr      string `json:"addr"`
	Relations int    `json:"relations"`
	Synopses  int    `json:"synopses"`
}

// handleRebalance moves a shard to another node: the coordinator pushes
// the shard's relation slices and replays its synopsis specs (same
// derived seeds, so static samples rebuild byte-identically), then flips
// the routing table. The old node is simply dropped from routing;
// decommissioning it is the operator's business. Clusters with
// incremental synopses refuse to rebalance — a reservoir's state lives in
// its event history, which a spec replay cannot reproduce.
func (c *Coordinator) handleRebalance(w http.ResponseWriter, r *http.Request) {
	if c.refuseDraining(w) {
		return
	}
	var req RebalanceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Shard < 0 || req.Shard >= c.cfg.Spec.Shards {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("shard %d outside [0, %d)", req.Shard, c.cfg.Spec.Shards))
		return
	}
	if req.Addr == "" {
		_ = writeError(w, http.StatusBadRequest, "rebalance needs a target addr")
		return
	}

	c.regMu.Lock()
	defer c.regMu.Unlock()
	c.mu.RLock()
	relNames := make([]string, 0, len(c.rels))
	for n := range c.rels {
		relNames = append(relNames, n)
	}
	synNames := make([]string, 0, len(c.syns))
	for n, s := range c.syns {
		if s.kind == "incremental" {
			c.mu.RUnlock()
			_ = writeError(w, http.StatusConflict, fmt.Sprintf("synopsis %q is incremental; its reservoir state cannot be rebuilt from its spec on another node", n))
			return
		}
		synNames = append(synNames, n)
	}
	c.mu.RUnlock()
	sort.Strings(relNames)
	sort.Strings(synNames)

	// On a failed push the target is scrubbed of everything already moved
	// (synopses first — they pin their base relations), so a retried
	// rebalance against the same node starts clean instead of 409ing.
	target := c.newDriver(req.Addr)
	var movedRels, movedSyns []string
	scrubTarget := func() {
		for i := len(movedSyns) - 1; i >= 0; i-- {
			c.rollbackPush([]*workload.Driver{target}, "/v1/synopses/"+url.PathEscape(movedSyns[i]))
		}
		for i := len(movedRels) - 1; i >= 0; i-- {
			c.rollbackPush([]*workload.Driver{target}, "/v1/relations/"+url.PathEscape(movedRels[i]))
		}
	}
	for _, rn := range relNames {
		c.mu.RLock()
		cr := c.rels[rn]
		c.mu.RUnlock()
		if status, msg := pushSlice(r.Context(), target, cr.rel, cr.rowsByShard[req.Shard]); status != http.StatusCreated {
			scrubTarget()
			_ = writeError(w, http.StatusBadGateway, fmt.Sprintf("target refused slice of %q: %s", rn, msg))
			return
		}
		movedRels = append(movedRels, rn)
	}
	for _, sn := range synNames {
		c.mu.RLock()
		spec := c.syns[sn].perShard[req.Shard]
		c.mu.RUnlock()
		status, raw, err := target.DoRetry(r.Context(), "/v1/synopses/"+url.PathEscape(sn), spec)
		if err != nil {
			scrubTarget()
			_ = writeError(w, http.StatusBadGateway, fmt.Sprintf("target synopsis push %q: %v", sn, err))
			return
		}
		if status != http.StatusCreated {
			scrubTarget()
			_ = writeError(w, http.StatusBadGateway, fmt.Sprintf("target refused synopsis %q: %s", sn, raw))
			return
		}
		movedSyns = append(movedSyns, sn)
	}

	c.mu.Lock()
	c.drivers[req.Shard] = target
	c.mu.Unlock()
	c.col.Add(mRebalance, 1)
	_ = writeJSON(w, http.StatusOK, RebalanceResponse{Shard: req.Shard, Addr: req.Addr, Relations: len(relNames), Synopses: len(synNames)})
}

// TopologyResponse is the body of GET /v1/cluster.
type TopologyResponse struct {
	Shards int      `json:"shards"`
	Mode   string   `json:"mode"`
	Addrs  []string `json:"addrs"`
	// ShardKeys maps each registered relation to its shard-key column.
	ShardKeys map[string]string `json:"shard_keys"`
}

func (c *Coordinator) handleTopology(w http.ResponseWriter, r *http.Request) {
	mode := c.cfg.Spec.Mode
	if mode == "" {
		mode = ModeHash
	}
	resp := TopologyResponse{Shards: c.cfg.Spec.Shards, Mode: mode, ShardKeys: map[string]string{}}
	c.mu.RLock()
	for _, d := range c.drivers {
		resp.Addrs = append(resp.Addrs, d.BaseURL)
	}
	for n, cr := range c.rels {
		resp.ShardKeys[n] = cr.rel.Schema().Column(cr.keyCol).Name
	}
	c.mu.RUnlock()
	_ = writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_ = writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"role":     "coordinator",
		"shards":   c.cfg.Spec.Shards,
		"draining": c.draining.Load(),
	})
}

// refuseDraining answers 503 during drain; estimation and registration
// endpoints call it first.
func (c *Coordinator) refuseDraining(w http.ResponseWriter) bool {
	if c.draining.Load() {
		_ = writeError(w, http.StatusServiceUnavailable, "coordinator is draining")
		return true
	}
	return false
}
