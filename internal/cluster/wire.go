package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"relest/internal/server"
)

// maxBodyBytes bounds JSON request bodies, matching the shard daemon.
const maxBodyBytes = 1 << 20

// writeJSON mirrors the shard daemon's encoder settings exactly
// (SetEscapeHTML(false), Encode's trailing newline): the byte-identity
// contract at shards=1 covers the whole response body, framing included.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) error {
	return writeJSON(w, status, server.ErrorResponse{Error: msg})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		_ = writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request body: %v", err))
		return false
	}
	return true
}

// validName matches the shard daemon's name charset so a name the
// coordinator accepts is never refused downstream.
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
