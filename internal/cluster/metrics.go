package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"relest/internal/obs"
)

// Coordinator metric names. Labels use obs.L's inline form; every label
// value here comes from a closed set (shard indices, status codes), never
// client input, so the exposition's cardinality stays bounded.
const (
	// mFanout counts shard sub-requests issued by estimate fanouts.
	mFanout = "relestd_shard_fanout_total"
	// mDeadlineMiss counts shard sub-requests that missed their deadline
	// slice (labelled by shard) — the degraded-answer trigger.
	mDeadlineMiss = "relestd_shard_deadline_miss_total"
	// mShardLatency is the per-shard sub-request latency histogram
	// (labelled by shard).
	mShardLatency = "relestd_shard_request_seconds"
	// mCoordReq counts coordinator estimate requests by status code.
	mCoordReq = "relestd_coord_requests_total"
	// mPartialResp counts degraded (partial: true) estimate responses.
	mPartialResp = "relestd_partial_responses_total"
	// mRebalance counts completed shard rebalances.
	mRebalance = "relestd_rebalance_total"
	// mScrapeErr counts shard /metrics scrapes that failed during a
	// merged exposition (labelled by shard); the merge skips the shard
	// and carries on.
	mScrapeErr = "relestd_shard_scrape_errors_total"
)

func shardLabel(name string, shard int) string {
	return obs.L(name, "shard", strconv.Itoa(shard))
}

// handleMetrics serves the coordinator's own metrics followed by every
// shard's families re-labelled with shard="N", so one scrape shows the
// whole cluster with per-shard series kept distinct. An unreachable
// shard is skipped (and counted) rather than failing the scrape.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	drivers := c.shardDrivers()
	scrapes := make(map[int][]byte, len(drivers))
	for s, d := range drivers {
		status, raw, err := d.Get(r.Context(), "/metrics")
		if err != nil || status != http.StatusOK {
			c.col.Add(shardLabel(mScrapeErr, s), 1)
			continue
		}
		scrapes[s] = raw
	}

	var own bytes.Buffer
	_ = c.col.Metrics().WritePrometheus(&own)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = writeMergedExposition(w, own.Bytes(), scrapes)
}

// writeMergedExposition writes the coordinator's own exposition verbatim,
// then each shard's families with a shard="N" label injected into every
// series. Families are emitted sorted with a single # TYPE line each, the
// format the exposition contract requires even when the same family
// appears on several shards.
func writeMergedExposition(w io.Writer, own []byte, scrapes map[int][]byte) error {
	if _, err := w.Write(own); err != nil {
		return err
	}

	type series struct {
		name  string // full labelled series name
		value string
	}
	fams := map[string]string{}       // family → kind
	byFam := map[string][]series{}    // family → labelled series in scrape order
	shards := make([]int, 0, len(scrapes))
	for s := range scrapes {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		label := `shard="` + strconv.Itoa(s) + `"`
		currentFam := ""
		for _, line := range strings.Split(string(scrapes[s]), "\n") {
			if line == "" {
				continue
			}
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				fields := strings.Fields(rest)
				if len(fields) != 2 {
					continue
				}
				currentFam = fields[0]
				fams[currentFam] = fields[1]
				continue
			}
			if strings.HasPrefix(line, "#") {
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 || currentFam == "" {
				continue
			}
			byFam[currentFam] = append(byFam[currentFam], series{
				name:  injectLabel(line[:sp], label),
				value: line[sp+1:],
			})
		}
	}

	names := make([]string, 0, len(fams))
	for f := range fams {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, fams[f]); err != nil {
			return err
		}
		for _, sr := range byFam[f] {
			if _, err := fmt.Fprintf(w, "%s %s\n", sr.name, sr.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// injectLabel adds one label pair to a series name: `fam` gains `{pair}`,
// `fam{a="b"}` gains `,pair` before the closing brace. Histogram children
// (`fam_bucket{le="..."}`) come through the same path, so the shard label
// lands next to the le label, keeping bucket series distinct per shard.
func injectLabel(name, pair string) string {
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + pair + "}"
	}
	return name + "{" + pair + "}"
}
