package cluster

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"relest/internal/algebra"
	"relest/internal/query"
	"relest/internal/relation"
)

func TestShardSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec ShardSpec
		ok   bool
	}{
		{"one shard", ShardSpec{Shards: 1}, true},
		{"hash", ShardSpec{Shards: 4, Mode: ModeHash}, true},
		{"default mode", ShardSpec{Shards: 4}, true},
		{"range", ShardSpec{Shards: 3, Mode: ModeRange, Bounds: []int64{10, 20}}, true},
		{"zero shards", ShardSpec{Shards: 0}, false},
		{"hash with bounds", ShardSpec{Shards: 2, Bounds: []int64{5}}, false},
		{"range missing bounds", ShardSpec{Shards: 3, Mode: ModeRange, Bounds: []int64{10}}, false},
		{"range unsorted", ShardSpec{Shards: 3, Mode: ModeRange, Bounds: []int64{20, 10}}, false},
		{"range equal bounds", ShardSpec{Shards: 3, Mode: ModeRange, Bounds: []int64{10, 10}}, false},
		{"unknown mode", ShardSpec{Shards: 2, Mode: "modulo"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.validate(); (err == nil) != tc.ok {
				t.Errorf("validate(%+v) = %v, want ok=%v", tc.spec, err, tc.ok)
			}
		})
	}
}

func TestRouteHash(t *testing.T) {
	spec := ShardSpec{Shards: 4}
	// Equal values route identically; the concrete placements are part of
	// the sharding contract (they decide which node owns a key forever).
	for _, v := range []relation.Value{relation.Int(42), relation.Float(2.5), relation.Str("x"), relation.Null()} {
		a, err := spec.Route(v)
		if err != nil {
			t.Fatalf("Route(%v): %v", v, err)
		}
		b, _ := spec.Route(v)
		if a != b {
			t.Errorf("Route(%v) unstable: %d then %d", v, a, b)
		}
		if a < 0 || a >= spec.Shards {
			t.Errorf("Route(%v) = %d outside [0, %d)", v, a, spec.Shards)
		}
	}
	if s, _ := spec.Route(relation.Null()); s != 0 {
		t.Errorf("NULL routes to %d, want the fixed shard 0", s)
	}
	// Routing must agree with join equality, not bit patterns: values that
	// compare equal across kinds (int vs float) or representations
	// (-0.0 vs 0.0) co-locate, or a co-partitioned join silently loses the
	// pairs that straddle shards.
	equalPairs := [][2]relation.Value{
		{relation.Int(2), relation.Float(2.0)},
		{relation.Float(0.0), relation.Float(math.Copysign(0, -1))},
		{relation.Int(0), relation.Float(math.Copysign(0, -1))},
		{relation.Int(-7), relation.Float(-7.0)},
	}
	for _, p := range equalPairs {
		a, err := spec.Route(p[0])
		if err != nil {
			t.Fatalf("Route(%v): %v", p[0], err)
		}
		b, err := spec.Route(p[1])
		if err != nil {
			t.Fatalf("Route(%v): %v", p[1], err)
		}
		if a != b {
			t.Errorf("SQL-equal values split across shards: Route(%v) = %d, Route(%v) = %d", p[0], a, p[1], b)
		}
	}
	// Distinct ints spread: over a modest key range every shard owns
	// something, or the hash is broken.
	seen := map[int]bool{}
	for k := int64(0); k < 64; k++ {
		s, _ := spec.Route(relation.Int(k))
		seen[s] = true
	}
	if len(seen) != spec.Shards {
		t.Errorf("64 int keys hit only shards %v of %d", seen, spec.Shards)
	}
	if s, _ := (ShardSpec{Shards: 1}).Route(relation.Int(7)); s != 0 {
		t.Errorf("one-shard route = %d", s)
	}
}

func TestRouteRange(t *testing.T) {
	spec := ShardSpec{Shards: 3, Mode: ModeRange, Bounds: []int64{10, 20}}
	cases := []struct {
		key  int64
		want int
	}{{-5, 0}, {10, 0}, {11, 1}, {20, 1}, {21, 2}, {1000, 2}}
	for _, tc := range cases {
		if s, err := spec.Route(relation.Int(tc.key)); err != nil || s != tc.want {
			t.Errorf("Route(%d) = %d, %v; want %d", tc.key, s, err, tc.want)
		}
	}
	if _, err := spec.Route(relation.Str("oops")); err == nil {
		t.Error("range routing a string key succeeded; want an error")
	}
	if s, err := spec.Route(relation.Null()); err != nil || s != 0 {
		t.Errorf("range NULL route = %d, %v; want shard 0", s, err)
	}
}

func TestSliceRowsPartitionAndOrder(t *testing.T) {
	rel := intRel(t, "R", "a", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	spec := ShardSpec{Shards: 3, Mode: ModeRange, Bounds: []int64{2, 5}}
	var total []int
	for s := 0; s < spec.Shards; s++ {
		rows, err := sliceRows(rel, 0, spec, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(rows); i++ {
			if rows[i-1] >= rows[i] {
				t.Errorf("shard %d rows out of base order: %v", s, rows)
			}
		}
		total = append(total, rows...)
	}
	if len(total) != rel.Len() {
		t.Fatalf("slices cover %d of %d rows", len(total), rel.Len())
	}
	// shards=1 reproduces the relation row for row — the byte-identity
	// anchor.
	rows, err := sliceRows(rel, 0, ShardSpec{Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r != i {
			t.Fatalf("one-shard slice permutes rows: %v", rows)
		}
	}
}

func TestShardSeed(t *testing.T) {
	if got := shardSeed(9, 0); got != 9 {
		t.Errorf("shardSeed(9, 0) = %d, want the seed unchanged", got)
	}
	seen := map[int64]bool{}
	for s := 0; s < 8; s++ {
		seen[shardSeed(42, s)] = true
	}
	if len(seen) != 8 {
		t.Errorf("shard seeds collide: %d distinct of 8", len(seen))
	}
}

func TestProportionalAlloc(t *testing.T) {
	cases := []struct {
		sizes []int
		total int
		want  []int
	}{
		{[]int{2000}, 200, []int{200}},
		{[]int{100, 100}, 100, []int{50, 50}},
		{[]int{100, 100, 100}, 100, []int{34, 33, 33}},
		{[]int{300, 100}, 100, []int{75, 25}},
		// The per-shard floor may overshoot the total by one: an empty
		// slice still needs an ask of one (shard nodes refuse zero-size
		// draws and clamp an over-ask themselves).
		{[]int{0, 100}, 100, []int{1, 100}},
		{[]int{0, 0}, 10, []int{1, 1}},
		{[]int{50, 50}, 0, []int{1, 1}},
	}
	for _, tc := range cases {
		got := proportionalAlloc(tc.sizes, tc.total)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("proportionalAlloc(%v, %d) = %v, want %v", tc.sizes, tc.total, got, tc.want)
		}
	}
}

// twoColSchemas provides R and S, each (a int, b int), for shardability
// checks keyed on column a.
type twoColSchemas struct{}

func (twoColSchemas) Schema(name string) (*relation.Schema, bool) {
	if name != "R" && name != "S" {
		return nil, false
	}
	sch, err := relation.ParseSchema("(a int, b int)")
	if err != nil {
		panic(err)
	}
	return sch, true
}

func polyFor(t *testing.T, q string) algebra.Polynomial {
	t.Helper()
	st, err := query.Parse(q, twoColSchemas{})
	if err != nil {
		t.Fatalf("parsing %q: %v", q, err)
	}
	poly, err := algebra.Normalize(st.Expr)
	if err != nil {
		t.Fatal(err)
	}
	return poly
}

func TestCheckShardable(t *testing.T) {
	keyPos := func(rel string) (int, bool) { return 0, rel == "R" || rel == "S" } // key column a
	cases := []struct {
		q  string
		ok bool
	}{
		{"count(R)", true},
		{"count(select(R, b = 3))", true},
		{"count(join(R, S, on a = a))", true},
		{"count(join(R, S, on b = b))", false},
		{"count(join(R, S, on a = b))", false},
	}
	for _, tc := range cases {
		err := checkShardable(polyFor(t, tc.q), keyPos)
		if (err == nil) != tc.ok {
			t.Errorf("checkShardable(%q) = %v, want shardable=%v", tc.q, err, tc.ok)
		}
	}
}

func TestInjectLabel(t *testing.T) {
	if got := injectLabel("relestd_requests_total", `shard="1"`); got != `relestd_requests_total{shard="1"}` {
		t.Errorf("bare name: %s", got)
	}
	if got := injectLabel(`relestd_requests_total{code="200"}`, `shard="1"`); got != `relestd_requests_total{code="200",shard="1"}` {
		t.Errorf("labelled name: %s", got)
	}
	if got := injectLabel(`x_bucket{le="+Inf"}`, `shard="0"`); got != `x_bucket{le="+Inf",shard="0"}` {
		t.Errorf("histogram bucket: %s", got)
	}
}

func TestWriteMergedExposition(t *testing.T) {
	own := "# TYPE relestd_shard_fanout_total counter\nrelestd_shard_fanout_total 4\n"
	scrapes := map[int][]byte{
		0: []byte("# TYPE relestd_requests_total counter\nrelestd_requests_total{code=\"200\"} 7\n# TYPE relestd_request_seconds histogram\nrelestd_request_seconds_bucket{le=\"+Inf\"} 7\nrelestd_request_seconds_sum 0.5\nrelestd_request_seconds_count 7\n"),
		1: []byte("# TYPE relestd_requests_total counter\nrelestd_requests_total{code=\"200\"} 3\n"),
	}
	var buf bytes.Buffer
	if err := writeMergedExposition(&buf, []byte(own), scrapes); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"relestd_shard_fanout_total 4",
		`relestd_requests_total{code="200",shard="0"} 7`,
		`relestd_requests_total{code="200",shard="1"} 3`,
		`relestd_request_seconds_bucket{le="+Inf",shard="0"} 7`,
		`relestd_request_seconds_sum{shard="0"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged exposition lacks %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even when the family comes from two shards.
	if n := strings.Count(out, "# TYPE relestd_requests_total counter"); n != 1 {
		t.Errorf("%d TYPE lines for the shared family, want 1:\n%s", n, out)
	}
}

// intRel builds a one-int-column relation.
func intRel(t *testing.T, name, col string, vals ...int64) *relation.Relation {
	t.Helper()
	sch, err := relation.ParseSchema("(" + col + " int)")
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(name, sch)
	for _, v := range vals {
		if err := r.AppendRow(relation.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}
