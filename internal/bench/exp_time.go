package bench

import (
	"context"
	"fmt"
	"time"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/sampling"
	"relest/internal/stats"
	"relest/internal/workload"
)

// F3Deadline measures time-constrained estimation — the CASE-DB mode: the
// achieved relative error of a join estimate as a function of the
// wall-clock budget, plus double-sampling's ability to hit a requested
// error target.
func F3Deadline(seed int64, scale Scale) *Table {
	N := scale.pick(20_000, 100_000)
	domain := scale.pick(1_000, 5_000)
	trials := scale.pick(8, 30)
	budgets := []time.Duration{
		2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
		25 * time.Millisecond, 50 * time.Millisecond,
	}

	src := sampling.NewSource(seed + 80)
	gen := src.Rand(0)
	r1, r2 := workload.JoinPair(gen, workload.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: domain, N1: N, N2: N, Correlation: workload.Independent,
	})
	e := algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	actual := workload.ExactJoinSize(r1, "a", r2, "a")

	tab := &Table{
		ID:      "F3",
		Title:   fmt.Sprintf("Deadline-bounded estimation: achieved error vs time budget (N=%d, %d trials)", N, trials),
		Columns: []string{"mode", "budget/target", "ARE", "mean final n", "mean rounds", "target met"},
		Notes: []string{
			"Deadline mode doubles the samples each round until the budget expires; the CI at the deadline is the answer (the CASE-DB contract).",
			"Double sampling sizes the sample from a pilot's variance; 'target met' is the fraction of trials whose final CI half-width satisfied the target.",
		},
	}
	for _, budget := range budgets {
		var es ErrorStats
		var finalN, rounds stats.Welford
		for tr := 0; tr < trials; tr++ {
			rng := src.Rand(21000 + tr)
			syn := estimator.NewSynopsis()
			if err := syn.AddDrawn(r1, 20, rng); err != nil {
				panic(err)
			}
			if err := syn.AddDrawn(r2, 20, rng); err != nil {
				panic(err)
			}
			est, history, err := estimator.DeadlineCountContext(context.Background(), e, syn, estimator.DeadlineOptions{
				Budget:      budget,
				InitialSize: 100,
				Estimate:    estimator.Options{Variance: estimator.VarNone},
				RNG:         rng,
			})
			if err != nil {
				panic(err)
			}
			es.Observe(est.Value, actual)
			last := history[len(history)-1]
			//lint:ignore detflow the A4 experiment measures how far the deadline estimator gets under a wall-clock budget; run-to-run variation is the quantity under study
			finalN.Add(float64(last.SampleSizes["R1"]))
			rounds.Add(float64(len(history)))
		}
		tab.AddRow("deadline", budget.String(), Pct(es.ARE()),
			Num(finalN.Mean()), fmt.Sprintf("%.1f", rounds.Mean()), "—")
	}
	for _, target := range []float64{0.05, 0.10} {
		var es ErrorStats
		var finalN stats.Welford
		met := 0
		for tr := 0; tr < trials; tr++ {
			rng := src.Rand(23000 + tr)
			syn := estimator.NewSynopsis()
			if err := syn.AddDrawn(r1, 50, rng); err != nil {
				panic(err)
			}
			if err := syn.AddDrawn(r2, 50, rng); err != nil {
				panic(err)
			}
			res, err := estimator.SequentialCountContext(context.Background(), e, syn, estimator.SequentialOptions{
				TargetRelErr: target,
				PilotSize:    scale.pick(100, 300),
				RNG:          rng,
			})
			if err != nil {
				panic(err)
			}
			es.Observe(res.Final.Value, actual)
			finalN.Add(float64(res.SampleSizes["R1"]))
			if res.TargetMet {
				met++
			}
		}
		tab.AddRow("double-sampling",
			fmt.Sprintf("±%.0f%%", 100*target),
			Pct(es.ARE()),
			Num(finalN.Mean()),
			"2.0",
			Pct(100*float64(met)/float64(trials)),
		)
	}
	// Throughput note: how fast one estimation round runs at f=5%.
	{
		rng := src.Rand(24999)
		syn := estimator.NewSynopsis()
		if err := syn.AddDrawn(r1, N/20, rng); err != nil {
			panic(err)
		}
		if err := syn.AddDrawn(r2, N/20, rng); err != nil {
			panic(err)
		}
		start := time.Now()
		reps := 0
		for time.Since(start) < 50*time.Millisecond {
			if _, err := estimator.CountWithOptions(e, syn, estimator.Options{Variance: estimator.VarNone}); err != nil {
				panic(err)
			}
			reps++
		}
		per := time.Since(start) / time.Duration(reps)
		tab.Notes = append(tab.Notes, fmt.Sprintf(
			"One point estimate at f=5%% (n=%d per relation) takes ~%s on this machine.",
			N/20, per.Round(10*time.Microsecond)))
	}
	return tab
}
