package bench

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	md := tab.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 333 | 4 |") || !strings.Contains(md, "> a note") {
		t.Errorf("markdown:\n%s", md)
	}
	plain := tab.Plain()
	if !strings.Contains(plain, "T0 — demo") || !strings.Contains(plain, "333") || !strings.Contains(plain, "note: a note") {
		t.Errorf("plain:\n%s", plain)
	}
}

func TestErrorStats(t *testing.T) {
	var es ErrorStats
	es.Observe(110, 100)
	es.Observe(90, 100)
	if es.ARE() != 10 {
		t.Errorf("ARE %v", es.ARE())
	}
	if es.Bias() != 0 {
		t.Errorf("bias %v", es.Bias())
	}
	if es.N() != 2 {
		t.Errorf("n %d", es.N())
	}
}

func TestCoverage(t *testing.T) {
	var c Coverage
	c.Observe(0, 10, 5)
	c.Observe(0, 10, 50)
	if c.Rate() != 50 {
		t.Errorf("rate %v", c.Rate())
	}
	if c.MeanWidth() != 10 {
		t.Errorf("width %v", c.MeanWidth())
	}
	var empty Coverage
	if empty.Rate() != 0 {
		t.Error("empty coverage rate")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(12.345) != "12.35%" && Pct(12.345) != "12.34%" {
		t.Errorf("Pct %s", Pct(12.345))
	}
	if Num(0) != "0" || Num(3) != "3" || Num(2.5) != "2.500" {
		t.Errorf("Num: %s %s %s", Num(0), Num(3), Num(2.5))
	}
	if !strings.Contains(Num(3e7), "e+07") && Num(3e7) != "3e+07" {
		t.Errorf("Num big: %s", Num(3e7))
	}
}

func TestLookupAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 14 {
		t.Fatalf("ids %v", ids)
	}
	if ids[0][0] != 'T' || ids[len(ids)-1][0] != 'A' {
		t.Errorf("ordering %v", ids)
	}
	if _, err := Lookup("T1"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("XX"); err == nil {
		t.Error("unknown id should fail")
	}
}

// TestExperimentsRunQuick smoke-runs every experiment at quick scale and
// checks structural invariants of the outputs. This is the integration test
// of the entire stack: workloads → synopses → estimators → tables.
func TestExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take a few seconds")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			tab := e.Run(42, Scale{Quick: true})
			if tab.ID != id {
				t.Errorf("table id %q", tab.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for ri, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("row %d has %d cells, want %d", ri, len(row), len(tab.Columns))
				}
				for ci, cell := range row {
					if cell == "" {
						t.Errorf("row %d cell %d empty", ri, ci)
					}
				}
			}
		})
	}
}
