package bench

import (
	"fmt"

	"relest/internal/estimator"
	"relest/internal/histogram"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/sketch"
	"relest/internal/workload"
)

// T6Baselines compares the sampling estimator against the synopses that
// historically bracketed it — the System-R-era histograms before it and
// the AMS sketches after it — at equal per-relation synopsis budgets, over
// the join workloads whose regimes decide the winners.
//
// Space accounting (per relation, in stored scalars): sampling keeps B
// sampled join-attribute values (plus two integers of metadata); the sketch
// keeps B atomic counters; histograms keep B/4 buckets of 4 scalars each.
//
// Expected shape (this is the "why sketches superseded it" table): sampling
// wins on independent and clustered workloads at moderate budgets, sketches
// win on strongly positively correlated / self-join-like data where
// sampling misses the matching heavy pairs, histograms sit in between and
// degrade with skew through the containment assumption.
func T6Baselines(seed int64, scale Scale) *Table {
	N := scale.pick(10_000, 50_000)
	domain := scale.pick(1_000, 10_000)
	trials := scale.pick(10, 50)
	budgets := []int{100, 500, 1000}

	src := sampling.NewSource(seed + 60)
	type wl struct {
		name   string
		r1, r2 *relation.Relation
	}
	var workloads []wl
	{
		gen := src.Rand(1)
		a, b := workload.JoinPair(gen, workload.JoinPairSpec{Z1: 0.5, Z2: 1.0, Domain: domain, N1: N, N2: N, Correlation: workload.Independent})
		workloads = append(workloads, wl{"zipf-independent", a, b})
		a, b = workload.JoinPair(gen, workload.JoinPairSpec{Z1: 0.5, Z2: 1.0, Domain: domain, N1: N, N2: N, Correlation: workload.Positive})
		workloads = append(workloads, wl{"zipf-positive", a, b})
		a, b = workload.ClusteredPair(gen, workload.ClusterSpec{Regions: 10, Domain: 1024, N1: N, N2: N})
		workloads = append(workloads, wl{"clustered-10", a, b})
		a, b = workload.ClusteredPair(gen, workload.ClusterSpec{Regions: 50, Domain: 1024, N1: N, N2: N})
		workloads = append(workloads, wl{"clustered-50", a, b})
	}

	tab := &Table{
		ID:      "T6",
		Title:   fmt.Sprintf("Equal-space join estimation: sampling vs AMS sketch vs histograms (N=%d, %d trials)", N, trials),
		Columns: []string{"workload", "budget", "sampling ARE", "sketch ARE", "equi-width ARE", "equi-depth ARE"},
		Notes: []string{
			"Budget = stored scalars per relation. Sampling: B attribute values; sketch: B atomic counters; histograms: B/4 buckets.",
			"Histograms are built on the full data (as a system catalog would); sampling and sketches see only the budgeted synopsis.",
		},
	}
	attrSchema := relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt})
	for _, w := range workloads {
		actual := workload.ExactJoinSize(w.r1, "a", w.r2, "a")
		vals1 := workload.AttributeValues(w.r1, "a")
		vals2 := workload.AttributeValues(w.r2, "a")
		// Frequency maps let the sketches ingest one weighted update per
		// distinct value instead of one per tuple.
		freq1 := map[int64]int64{}
		for _, v := range vals1 {
			freq1[v]++
		}
		freq2 := map[int64]int64{}
		for _, v := range vals2 {
			freq2[v]++
		}
		// Single-column projections of the relations for the sampling
		// estimator (the join needs only the join attribute, so a fair
		// budget buys B sampled values).
		col1 := relation.New("R1", attrSchema)
		for _, v := range vals1 {
			col1.MustAppend(relation.Tuple{relation.Int(v)})
		}
		col2 := relation.New("R2", attrSchema)
		for _, v := range vals2 {
			col2.MustAppend(relation.Tuple{relation.Int(v)})
		}
		e := algebraJoin(col1, col2)
		for _, budget := range budgets {
			var sampARE, skARE, ewARE, edARE ErrorStats
			for tr := 0; tr < trials; tr++ {
				rng := src.Rand(17000 + tr)
				// Sampling.
				syn := estimator.NewSynopsis()
				if err := syn.AddDrawn(col1, budget, rng); err != nil {
					panic(err)
				}
				if err := syn.AddDrawn(col2, budget, rng); err != nil {
					panic(err)
				}
				est, err := estimator.CountWithOptions(e, syn, estimator.Options{Variance: estimator.VarNone})
				if err != nil {
					panic(err)
				}
				sampARE.Observe(est.Value, actual)
				// Sketch (per-trial seed: a fresh hash family).
				cfg := sketch.Config{Groups: 5, GroupSize: budget / 5, Seed: src.StreamSeed(18000 + tr)}
				s1, s2 := sketch.New(cfg), sketch.New(cfg)
				for v, c := range freq1 {
					s1.Update(uint64(v), c)
				}
				for v, c := range freq2 {
					s2.Update(uint64(v), c)
				}
				got, err := sketch.JoinEstimate(s1, s2)
				if err != nil {
					panic(err)
				}
				skARE.Observe(got, actual)
			}
			// Histograms are deterministic: one observation each.
			buckets := budget / 4
			h1, err := histogram.Build(histogram.EquiWidth, vals1, buckets)
			if err != nil {
				panic(err)
			}
			h2, err := histogram.Build(histogram.EquiWidth, vals2, buckets)
			if err != nil {
				panic(err)
			}
			ewARE.Observe(histogram.EstimateJoin(h1, h2), actual)
			d1, err := histogram.Build(histogram.EquiDepth, vals1, buckets)
			if err != nil {
				panic(err)
			}
			d2, err := histogram.Build(histogram.EquiDepth, vals2, buckets)
			if err != nil {
				panic(err)
			}
			edARE.Observe(histogram.EstimateJoin(d1, d2), actual)

			tab.AddRow(
				w.name,
				fmt.Sprintf("%d", budget),
				Pct(sampARE.ARE()),
				Pct(skARE.ARE()),
				Pct(ewARE.ARE()),
				Pct(edARE.ARE()),
			)
		}
	}
	return tab
}
