package bench

import (
	"fmt"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/stats"
	"relest/internal/workload"
)

// T5Variance measures the quality of each variance estimator: the ratio of
// the mean estimated variance to the empirical variance of the point
// estimate across trials. A perfect variance estimator gives ratio 1.0; the
// closed forms (analytic) are exactly unbiased, split-sample is a
// first-order approximation, and the jackknife is asymptotically correct.
func T5Variance(seed int64, scale Scale) *Table {
	N := scale.pick(4_000, 20_000)
	trials := scale.pick(40, 300)
	fraction := 0.05

	src := sampling.NewSource(seed + 50)
	gen := src.Rand(0)
	r1, r2 := workload.JoinPair(gen, workload.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: N / 20, N1: N, N2: N, Correlation: workload.Independent,
	})
	sel := algebra.Must(algebra.Select(algebra.BaseOf(r1),
		algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(int64(N / 100))}))
	join := algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	union := algebra.Must(algebra.Union(algebra.BaseOf(r1), algebra.BaseOf(r2)))

	type cfg struct {
		query   string
		e       *algebra.Expr
		methods []estimator.VarianceMethod
	}
	cfgs := []cfg{
		{"selection", sel, []estimator.VarianceMethod{estimator.VarAnalytic, estimator.VarSplitSample, estimator.VarJackknife}},
		{"join", join, []estimator.VarianceMethod{estimator.VarAnalytic, estimator.VarSplitSample, estimator.VarJackknife}},
		{"union", union, []estimator.VarianceMethod{estimator.VarSplitSample, estimator.VarJackknife}},
	}

	tab := &Table{
		ID:      "T5",
		Title:   fmt.Sprintf("Variance-estimator quality: E[Var̂]/empirical variance (N=%d, f=%d%%, %d trials)", N, int(fraction*100), trials),
		Columns: []string{"query", "method", "E[Var̂]/Var", "empirical Var"},
		Notes: []string{
			"Ratio 1.0 is perfect. The closed forms are unbiased (ratio ≈ 1 up to trial noise); split-sample is a first-order 1/n approximation.",
			"The jackknife runs on every query: the single-pass engine derives all delete-one replicates from one enumeration, so it costs about as much as a point estimate.",
		},
	}
	for _, c := range cfgs {
		for _, m := range c.methods {
			var points stats.Welford
			var vars stats.Welford
			for i := 0; i < trials; i++ {
				rng := src.Rand(15000 + i)
				syn := estimator.NewSynopsis()
				if err := syn.AddDrawn(r1, int(fraction*float64(N)), rng); err != nil {
					panic(err)
				}
				if err := syn.AddDrawn(r2, int(fraction*float64(N)), rng); err != nil {
					panic(err)
				}
				est, err := estimator.CountWithOptions(c.e, syn, estimator.Options{
					Variance: m,
					Seed:     int64(i),
				})
				if err != nil {
					panic(err)
				}
				points.Add(est.Value)
				vars.Add(est.Variance)
			}
			emp := points.Variance()
			ratio := 0.0
			if emp > 0 {
				ratio = vars.Mean() / emp
			}
			tab.AddRow(c.query, m.String(), fmt.Sprintf("%.3f", ratio), Num(emp))
		}
	}
	return tab
}
