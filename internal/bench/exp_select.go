package bench

import (
	"fmt"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// T1Selection measures the selection estimator: average relative error and
// 95% CI coverage versus sampling fraction, across selectivities. The
// estimator is the SRSWOR scale-up with the exact hypergeometric-family
// variance; coverage should track the nominal level and error should decay
// as 1/√n.
func T1Selection(seed int64, scale Scale) *Table {
	const domain = 1_000_000
	N := scale.pick(20_000, 100_000)
	trials := scale.pick(25, 200)
	selectivities := []float64{0.001, 0.01, 0.1, 0.5}
	fractions := []float64{0.01, 0.02, 0.05, 0.10, 0.20}

	src := sampling.NewSource(seed)
	gen := src.Rand(0)
	rel := relation.New("R", relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
	for i := 0; i < N; i++ {
		rel.MustAppend(relation.Tuple{relation.Int(int64(gen.Intn(domain)))})
	}
	cat := algebra.MapCatalog{"R": rel}

	tab := &Table{
		ID:      "T1",
		Title:   fmt.Sprintf("Selection estimator: ARE and 95%% CI coverage vs sampling fraction (N=%d, %d trials)", N, trials),
		Columns: []string{"selectivity", "fraction", "ARE", "bias", "coverage", "mean CI width"},
		Notes: []string{
			"Estimator: (N/n)·hits with the exact SRSWOR variance; CI via CLT.",
			"Error decays ~1/√n; coverage tracks the nominal 95% except at tiny hit counts.",
		},
	}
	for _, sel := range selectivities {
		threshold := int64(sel * domain)
		e := algebra.Must(algebra.Select(algebra.BaseOf(rel),
			algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(threshold)}))
		actual, err := algebra.Count(e, cat)
		if err != nil {
			panic(err)
		}
		for _, f := range fractions {
			var es ErrorStats
			var cov Coverage
			for tr := 0; tr < trials; tr++ {
				rng := src.Rand(1000 + tr)
				syn := estimator.NewSynopsis()
				n := int(f * float64(N))
				if err := syn.AddDrawn(rel, n, rng); err != nil {
					panic(err)
				}
				est, err := estimator.CountWithOptions(e, syn, estimator.Options{
					Variance: estimator.VarAnalytic,
				})
				if err != nil {
					panic(err)
				}
				es.Observe(est.Value, float64(actual))
				cov.Observe(est.Lo, est.Hi, float64(actual))
			}
			tab.AddRow(
				fmt.Sprintf("%.3f", sel),
				Pct(100*f),
				Pct(es.ARE()),
				Pct(es.Bias()),
				Pct(cov.Rate()),
				Num(cov.MeanWidth()),
			)
		}
	}
	return tab
}

// F2Coverage measures CI coverage and width against the nominal level for
// both a selection and a join, at several confidence levels and sampling
// fractions — the figure validating the CLT intervals.
func F2Coverage(seed int64, scale Scale) *Table {
	N := scale.pick(8_000, 40_000)
	trials := scale.pick(25, 200)
	levels := []float64{0.90, 0.95, 0.99}
	fractions := []float64{0.02, 0.05, 0.10}

	src := sampling.NewSource(seed + 2)
	gen := src.Rand(0)
	r1, r2 := workload.JoinPair(gen, workload.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: N / 20, N1: N, N2: N, Correlation: workload.Independent,
	})
	sel := algebra.Must(algebra.Select(algebra.BaseOf(r1),
		algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(int64(N / 80))}))
	join := algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	cat := algebra.MapCatalog{"R1": r1, "R2": r2}

	tab := &Table{
		ID:      "F2",
		Title:   fmt.Sprintf("CI coverage and width vs nominal level (N=%d, %d trials)", N, trials),
		Columns: []string{"query", "fraction", "nominal", "coverage", "mean CI width"},
		Notes: []string{
			"Selection uses the exact SRSWOR variance; the join uses the unbiased two-sample closed form.",
			"Coverage should approach the nominal level as samples grow.",
		},
	}
	for qi, q := range []*algebra.Expr{sel, join} {
		name := []string{"selection", "join"}[qi]
		actual, err := algebra.Count(q, cat)
		if err != nil {
			panic(err)
		}
		for _, f := range fractions {
			for _, lvl := range levels {
				var cov Coverage
				for tr := 0; tr < trials; tr++ {
					rng := src.Rand(5000 + tr)
					syn := estimator.NewSynopsis()
					if err := syn.AddDrawn(r1, int(f*float64(r1.Len())), rng); err != nil {
						panic(err)
					}
					if qi == 1 {
						if err := syn.AddDrawn(r2, int(f*float64(r2.Len())), rng); err != nil {
							panic(err)
						}
					}
					est, err := estimator.CountWithOptions(q, syn, estimator.Options{
						Variance:   estimator.VarAnalytic,
						Confidence: lvl,
					})
					if err != nil {
						panic(err)
					}
					cov.Observe(est.Lo, est.Hi, float64(actual))
				}
				tab.AddRow(name, Pct(100*f), Pct(100*lvl), Pct(cov.Rate()), Num(cov.MeanWidth()))
			}
		}
	}
	return tab
}
