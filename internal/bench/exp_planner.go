package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/planner"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/stats"
)

// A3Planner measures the paper's motivating application end to end: a
// Selinger-style optimizer choosing left-deep join orders with cardinality
// estimates from (a) the sampling estimators, (b) a System-R catalog under
// the attribute-value-independence assumption, and (c) exact counts. The
// metric is the chosen plan's TRUE C_out cost relative to the optimal
// plan's — 1.0 means the oracle picked the best order.
//
// The workload plants cross-relation correlation (a pair of logically
// identical join attributes), which AVI cannot see but whole-prefix
// sampling estimates can.
func A3Planner(seed int64, scale Scale) *Table {
	nA := scale.pick(2_000, 10_000)
	trials := scale.pick(10, 40)
	fraction := 0.10

	src := sampling.NewSource(seed + 120)
	tab := &Table{
		ID:      "A3",
		Title:   fmt.Sprintf("Optimizer plan quality: sampling vs AVI catalog vs exact oracles (|A|=%d, f=%d%%, %d trials)", nA, int(fraction*100), trials),
		Columns: []string{"oracle", "mean cost ratio", "worst ratio", "optimal picked"},
		Notes: []string{
			"Cost ratio = chosen plan's true C_out / optimal plan's true C_out over 3-relation star queries with correlated join attributes.",
			"AVI treats A.u⋈B and A.k⋈C as equally selective (same distinct counts); sampling estimates each prefix as a whole and sees that only one of them is.",
		},
	}

	type agg struct {
		ratios  stats.Welford
		worst   float64
		optimal int
	}
	results := map[string]*agg{"sampling": {}, "catalog": {}, "exact": {}}

	for tr := 0; tr < trials; tr++ {
		rng := src.Rand(31000 + tr)
		cat, q := correlatedStar(rng, nA)

		// Optimal true cost from the exact oracle.
		exactPlan, err := planner.Optimize(q, planner.Exact{Cat: cat})
		if err != nil {
			panic(err)
		}
		optCost, err := planner.TrueCost(q, exactPlan.Order, cat)
		if err != nil {
			panic(err)
		}
		if optCost <= 0 {
			optCost = 1
		}

		syn := estimator.NewSynopsis()
		for _, name := range q.Relations {
			r, _ := cat.Relation(name)
			n := int(fraction * float64(r.Len()))
			if n < 30 {
				n = 30
			}
			if err := syn.AddDrawn(r, n, rng); err != nil {
				panic(err)
			}
		}
		catalogOracle, err := planner.NewCatalog(q, cat)
		if err != nil {
			panic(err)
		}
		oracles := []struct {
			name   string
			oracle planner.CardinalityEstimator
		}{
			{"sampling", planner.Sampling{Syn: syn}},
			{"catalog", catalogOracle},
			{"exact", planner.Exact{Cat: cat}},
		}
		for _, oc := range oracles {
			name, oracle := oc.name, oc.oracle
			plan, err := planner.Optimize(q, oracle)
			if err != nil {
				panic(err)
			}
			cost, err := planner.TrueCost(q, plan.Order, cat)
			if err != nil {
				panic(err)
			}
			ratio := cost / optCost
			a := results[name]
			a.ratios.Add(ratio)
			if ratio > a.worst {
				a.worst = ratio
			}
			if strings.Join(plan.Order, ",") == strings.Join(exactPlan.Order, ",") || ratio <= 1.0000001 {
				a.optimal++
			}
		}
	}
	for _, name := range []string{"exact", "sampling", "catalog"} {
		a := results[name]
		tab.AddRow(name,
			fmt.Sprintf("%.2f", a.ratios.Mean()),
			fmt.Sprintf("%.2f", a.worst),
			Pct(100*float64(a.optimal)/float64(trials)),
		)
	}
	return tab
}

// correlatedStar builds a 3-relation star A ⋈ B (on u), A ⋈ C (on k) that
// fools AVI: A.u and B.u are Zipf(1.5)-skewed with ALIGNED heavy hitters,
// so the true A⋈B is ~two orders of magnitude above the AVI estimate
// |A||B|/d, while A.k and C.k are uniform (AVI-exact). Cardinalities are
// chosen so AVI ranks A⋈B as the cheaper first join when it is actually
// the catastrophic one.
func correlatedStar(rng *rand.Rand, nA int) (algebra.MapCatalog, planner.Query) {
	const domain = 500
	mkSchema := func(cols ...string) *relation.Schema {
		cs := make([]relation.Column, len(cols))
		for i, c := range cols {
			cs[i] = relation.Column{Name: c, Kind: relation.KindInt}
		}
		return relation.MustSchema(cs...)
	}
	// Aligned Zipf sampler over ranks 0..domain-1: value == rank, so the
	// same heavy values dominate both A.u and B.u.
	zipfDraw := func() int64 {
		// Inverse-CDF over precomputed Zipf(1.5) weights.
		u := rng.Float64() * zipfTotal
		lo, hi := 0, domain-1
		for lo < hi {
			mid := (lo + hi) / 2
			if zipfCum[mid] >= u {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return int64(lo)
	}
	a := relation.New("A", mkSchema("u", "k", "aid"))
	for i := 0; i < nA; i++ {
		a.MustAppend(relation.Tuple{
			relation.Int(zipfDraw()),
			relation.Int(int64(rng.Intn(domain))),
			relation.Int(int64(i)),
		})
	}
	nB, nC := nA/20, 3*nA/20
	b := relation.New("B", mkSchema("u", "bid"))
	for i := 0; i < nB; i++ {
		b.MustAppend(relation.Tuple{relation.Int(zipfDraw()), relation.Int(int64(i))})
	}
	c := relation.New("C", mkSchema("k", "cid"))
	for i := 0; i < nC; i++ {
		c.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(domain))), relation.Int(int64(i))})
	}
	cat := algebra.MapCatalog{"A": a, "B": b, "C": c}
	q := planner.Query{
		Relations: []string{"A", "B", "C"},
		Schemas:   map[string]*relation.Schema{"A": a.Schema(), "B": b.Schema(), "C": c.Schema()},
		Edges: []planner.Edge{
			{A: "A", B: "B", ACol: "u", BCol: "u"},
			{A: "A", B: "C", ACol: "k", BCol: "k"},
		},
	}
	return cat, q
}

// Precomputed Zipf(1.5, 500) cumulative weights for correlatedStar's
// inverse-CDF sampler.
var (
	zipfCum   []float64
	zipfTotal float64
)

func init() {
	const domain = 500
	zipfCum = make([]float64, domain)
	for v := 0; v < domain; v++ {
		w := math.Pow(float64(v+1), -1.5)
		zipfTotal += w
		zipfCum[v] = zipfTotal
	}
}
