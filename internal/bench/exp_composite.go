package bench

import (
	"fmt"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// algebraJoin builds the standard single-attribute equi-join expression
// between two relations named R1 and R2 with an `a` column.
func algebraJoin(r1, r2 *relation.Relation) *algebra.Expr {
	return algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2x"))
}

// F1Composite measures estimation error versus sampling fraction for a
// genuinely composite expression exercising selection, join and difference
// in one query:
//
//	(σ_{a<τ}(R1) ⋈_a R2) − (R3 ⋈_a R2)
//
// R3 shares half of R1's tuples, so the difference removes a real, sample-
// estimable part. The counting polynomial has three terms, one of which
// uses R2 twice — the full machinery in one expression.
func F1Composite(seed int64, scale Scale) *Table {
	N := scale.pick(4_000, 20_000)
	domain := scale.pick(400, 2_000)
	trials := scale.pick(15, 60)
	fractions := []float64{0.02, 0.05, 0.10, 0.20}

	src := sampling.NewSource(seed + 70)
	gen := src.Rand(0)
	r1 := workload.ZipfRelation(gen, "R1", 0.5, domain, N, workload.MapRandom)
	r2 := workload.ZipfRelation(gen, "R2", 0.5, domain, N, workload.MapRandom)
	// R3: half of R1's tuples plus fresh ones (ids disjoint from R1's
	// second half), same layout.
	r3 := relation.New("R3", workload.JoinSchema())
	r1.EachRow(func(i int, row relation.Row) bool {
		if i%2 == 0 {
			r3.AppendFrom(r1, i)
		}
		return true
	})
	for i := 0; i < N/2; i++ {
		r3.MustAppend(relation.Tuple{
			relation.Int(int64(gen.Intn(domain))),
			relation.Int(int64(10*N + i)),
		})
	}
	r3 = r3.Subset("R3", gen.Perm(r3.Len()))

	tau := relation.Int(int64(domain / 4))
	left := algebra.Must(algebra.Join(
		algebra.Must(algebra.Select(algebra.BaseOf(r1), algebra.Cmp{Col: "a", Op: algebra.LT, Val: tau})),
		algebra.BaseOf(r2), []algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	right := algebra.Must(algebra.Join(algebra.BaseOf(r3), algebra.BaseOf(r2),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
	e := algebra.Must(algebra.Diff(left, right))

	cat := algebra.MapCatalog{"R1": r1, "R2": r2, "R3": r3}
	actual, err := algebra.Count(e, cat)
	if err != nil {
		panic(err)
	}
	poly, err := algebra.Normalize(e)
	if err != nil {
		panic(err)
	}

	tab := &Table{
		ID:      "F1",
		Title:   fmt.Sprintf("Composite query (σ(R1)⋈R2) − (R3⋈R2): error vs sampling fraction (N=%d, %d trials, %d polynomial terms)", N, trials, poly.NumTerms()),
		Columns: []string{"fraction", "ARE", "bias", "mean estimate", "actual"},
		Notes: []string{
			"The difference expands via |A−B| = |A| − |A∩B|; the ∩ term uses R2 in two occurrences, exercising the falling-factorial pattern weights inside a composite query.",
			"Bias stays near zero at every fraction (unbiasedness is not asymptotic).",
		},
	}
	for _, f := range fractions {
		var es ErrorStats
		sum := 0.0
		for tr := 0; tr < trials; tr++ {
			rng := src.Rand(19000 + tr)
			syn := estimator.NewSynopsis()
			for _, r := range []*relation.Relation{r1, r2, r3} {
				if err := syn.AddDrawn(r, int(f*float64(r.Len())), rng); err != nil {
					panic(err)
				}
			}
			est, err := estimator.CountWithOptions(e, syn, estimator.Options{Variance: estimator.VarNone})
			if err != nil {
				panic(err)
			}
			es.Observe(est.Value, float64(actual))
			sum += est.Value
		}
		tab.AddRow(
			Pct(100*f),
			Pct(es.ARE()),
			Pct(es.Bias()),
			Num(sum/float64(trials)),
			Num(float64(actual)),
		)
	}
	return tab
}
