package bench

import (
	"fmt"
	"sort"
)

// Experiment is a runnable experiment from the DESIGN.md index.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed int64, scale Scale) *Table
}

// registry maps experiment ids to their runners.
var registry = map[string]Experiment{
	"T1": {"T1", "Selection estimator: error and CI coverage vs sampling fraction", T1Selection},
	"T2": {"T2", "Join estimator: error vs fraction × skew × correlation", T2Join},
	"T3": {"T3", "Set operations: identity-based vs naive estimators", T3SetOps},
	"T4": {"T4", "Distinct-count (π) estimators", T4Distinct},
	"T5": {"T5", "Variance-estimator quality", T5Variance},
	"T6": {"T6", "Equal-space comparison vs AMS sketches and histograms", T6Baselines},
	"T7": {"T7", "Self-join: pattern weights vs naive scaling", T7SelfJoin},
	"F1": {"F1", "Composite expression: error vs sample size", F1Composite},
	"F2": {"F2", "Confidence-interval coverage and width", F2Coverage},
	"F3": {"F3", "Time-constrained estimation (deadline and double sampling)", F3Deadline},
	"F4": {"F4", "Incremental synopsis over an insert/delete stream", F4Incremental},
	"A1": {"A1", "Ablation: stratified vs plain SRSWOR sampling", A1Stratified},
	"A2": {"A2", "Ablation: page-level vs tuple-level sampling", A2PageSampling},
	"A3": {"A3", "Optimizer plan quality: sampling vs AVI catalog", A3Planner},
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs returns all experiment ids: tables first, then figures, then the
// ablations, each in numeric order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	var ts, fs, as []string
	for _, id := range out {
		switch id[0] {
		case 'T':
			ts = append(ts, id)
		case 'F':
			fs = append(fs, id)
		default:
			as = append(as, id)
		}
	}
	return append(append(ts, fs...), as...)
}

// RunAll executes every experiment in order.
func RunAll(seed int64, scale Scale) []*Table {
	var out []*Table
	for _, id := range IDs() {
		e := registry[id]
		out = append(out, e.Run(seed, scale))
	}
	return out
}
