// Package bench implements the experiment harness: deterministic workload
// construction, trial runners, error/coverage metrics, and table rendering
// for every experiment in DESIGN.md (T1–T7, F1–F4). The cmd/experiments
// binary and the repository-root benchmarks are thin wrappers around this
// package, so the tables in EXPERIMENTS.md are regenerable from one place.
package bench

import (
	"fmt"
	"strings"

	"relest/internal/stats"
)

// Table is one experiment's result in row/column form, mirroring the
// corresponding table or figure of the paper's evaluation.
type Table struct {
	ID      string // experiment id, e.g. "T2" or "F1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// Plain renders the table with aligned columns for terminals.
func (t *Table) Plain() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len([]rune(c))
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len([]rune(c)) > width[i] {
				width[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ErrorStats aggregates relative errors and signed bias across trials.
type ErrorStats struct {
	abs  stats.Welford // |est−act|/act
	sign stats.Welford // (est−act)/act
}

// Observe records one trial.
func (e *ErrorStats) Observe(est, actual float64) {
	e.abs.Add(stats.RelativeError(est, actual))
	//lint:ignore floateq division guard: only an exactly-zero actual makes the signed error undefined
	if actual != 0 {
		e.sign.Add((est - actual) / actual)
	}
}

// ARE returns the average relative error in percent.
func (e *ErrorStats) ARE() float64 { return 100 * e.abs.Mean() }

// Bias returns the mean signed relative deviation in percent — near zero
// for an unbiased estimator.
func (e *ErrorStats) Bias() float64 { return 100 * e.sign.Mean() }

// N returns the number of trials observed.
func (e *ErrorStats) N() int64 { return e.abs.N() }

// Coverage counts how often confidence intervals bracket the truth.
type Coverage struct {
	hits, total int
	width       stats.Welford
}

// Observe records one CI against the true value.
func (c *Coverage) Observe(lo, hi, actual float64) {
	c.total++
	if lo <= actual && actual <= hi {
		c.hits++
	}
	c.width.Add(hi - lo)
}

// Rate returns the empirical coverage in percent.
func (c *Coverage) Rate() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.hits) / float64(c.total)
}

// MeanWidth returns the average CI width.
func (c *Coverage) MeanWidth() float64 { return c.width.Mean() }

// Pct formats a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// Num formats a float compactly.
func Num(v float64) string {
	switch {
	//lint:ignore floateq formatting dispatch: exactly-zero prints as "0", nothing numerical branches on this
	case v == 0:
		return "0"
	case v >= 1e6 || v <= -1e6:
		return fmt.Sprintf("%.3g", v)
	//lint:ignore floateq integrality test: exact round-trip through int64 is the intended check
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Scale selects experiment sizes. Quick keeps unit-test and benchmark
// runtime in seconds; Full reproduces the EXPERIMENTS.md tables.
type Scale struct {
	Quick bool
}

// pick returns q under Quick and f otherwise.
func (s Scale) pick(q, f int) int {
	if s.Quick {
		return q
	}
	return f
}
