package bench

import (
	"fmt"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/sampling"
	"relest/internal/stats"
	"relest/internal/workload"
)

// T2Join measures the equi-join size estimator across skew and correlation
// regimes: average relative error versus sampling fraction. The expected
// shape: error grows with skew, positive correlation is the easy case for
// sampling when heavy hitters are sampled, and small fractions on
// independent skewed data are where sampling struggles (the weakness the
// sketch literature later attacked).
func T2Join(seed int64, scale Scale) *Table {
	N := scale.pick(10_000, 50_000)
	domain := scale.pick(1_000, 10_000)
	trials := scale.pick(15, 50)
	skews := []float64{0, 0.5, 1.0}
	correlations := []workload.Correlation{workload.Positive, workload.Independent, workload.Negative}
	fractions := []float64{0.01, 0.02, 0.05, 0.10, 0.20}

	src := sampling.NewSource(seed + 10)
	tab := &Table{
		ID:      "T2",
		Title:   fmt.Sprintf("Join size estimator: ARE vs sampling fraction × skew × correlation (N=%d, domain=%d, %d trials)", N, domain, trials),
		Columns: []string{"z2", "correlation", "fraction", "ARE", "bias", "actual join"},
		Notes: []string{
			"R1 is Zipf(0.5); R2's skew and mapping correlation vary. Estimator: (N1N2/n1n2)·sample-join with unbiased closed-form variance.",
			"Bias stays near zero everywhere (the estimator is unbiased); ARE grows with skew and shrinks with fraction.",
		},
	}
	for _, z2 := range skews {
		for _, corr := range correlations {
			gen := src.Rand(int(z2*10) + int(corr)*100)
			r1, r2 := workload.JoinPair(gen, workload.JoinPairSpec{
				Z1: 0.5, Z2: z2, Domain: domain, N1: N, N2: N, Correlation: corr,
			})
			e := algebra.Must(algebra.Join(algebra.BaseOf(r1), algebra.BaseOf(r2),
				[]algebra.On{{Left: "a", Right: "a"}}, nil, "R2"))
			actual := workload.ExactJoinSize(r1, "a", r2, "a")
			for _, f := range fractions {
				var es ErrorStats
				for tr := 0; tr < trials; tr++ {
					rng := src.Rand(7000 + tr)
					syn := estimator.NewSynopsis()
					if err := syn.AddDrawn(r1, int(f*float64(N)), rng); err != nil {
						panic(err)
					}
					if err := syn.AddDrawn(r2, int(f*float64(N)), rng); err != nil {
						panic(err)
					}
					est, err := estimator.CountWithOptions(e, syn, estimator.Options{Variance: estimator.VarNone})
					if err != nil {
						panic(err)
					}
					es.Observe(est.Value, actual)
				}
				tab.AddRow(
					fmt.Sprintf("%.1f", z2),
					corr.String(),
					Pct(100*f),
					Pct(es.ARE()),
					Pct(es.Bias()),
					Num(actual),
				)
			}
		}
	}
	return tab
}

// T7SelfJoin is the repeated-relation ablation: estimating |R ⋈_a R| with
// the falling-factorial pattern weights versus naively scaling the sample
// self-join count by (N/n)². The naive estimator is systematically biased
// (it treats the diagonal pairs as if they were sampled at rate (n/N)²,
// when a tuple joins with itself whenever it is sampled at all); the
// pattern weights remove the bias exactly.
func T7SelfJoin(seed int64, scale Scale) *Table {
	N := scale.pick(4_000, 20_000)
	domain := scale.pick(200, 1_000)
	trials := scale.pick(20, 100)
	skews := []float64{0.5, 1.0}
	fractions := []float64{0.02, 0.05, 0.10}

	src := sampling.NewSource(seed + 20)
	tab := &Table{
		ID:      "T7",
		Title:   fmt.Sprintf("Self-join: pattern-weighted vs naive (N/n)² scaling (N=%d, domain=%d, %d trials)", N, domain, trials),
		Columns: []string{"z", "fraction", "weighted ARE", "weighted bias", "naive ARE", "naive bias"},
		Notes: []string{
			"Naive bias is structural: diagonal (t,t) pairs are included with probability n/N, not (n/N)², so scaling by (N/n)² overcounts them by N/n.",
			"The falling-factorial weights assign N/n to diagonal pairs and (N)₂/(n)₂ to off-diagonal ones, restoring unbiasedness.",
		},
	}
	for _, z := range skews {
		gen := src.Rand(int(z * 100))
		r := workload.ZipfRelation(gen, "R", z, domain, N, workload.MapRandom)
		e := algebra.Must(algebra.Join(algebra.BaseOf(r), algebra.BaseOf(r),
			[]algebra.On{{Left: "a", Right: "a"}}, nil, "Rb"))
		actual := workload.ExactJoinSize(r, "a", r, "a")
		poly, err := algebra.Normalize(e)
		if err != nil {
			panic(err)
		}
		for _, f := range fractions {
			var weighted, naive ErrorStats
			n := int(f * float64(N))
			for tr := 0; tr < trials; tr++ {
				rng := src.Rand(9000 + tr)
				syn := estimator.NewSynopsis()
				if err := syn.AddDrawn(r, n, rng); err != nil {
					panic(err)
				}
				est, err := estimator.CountWithOptions(e, syn, estimator.Options{Variance: estimator.VarNone})
				if err != nil {
					panic(err)
				}
				weighted.Observe(est.Value, actual)
				// Naive: raw sample self-join count times (N/n)².
				inst, err := algebra.BindInstances(&poly.Terms[0], syn)
				if err != nil {
					panic(err)
				}
				c, err := poly.Terms[0].CountAssignments(inst)
				if err != nil {
					panic(err)
				}
				scaleUp := stats.FallingFactorialRatio(N, n, 1)
				naive.Observe(scaleUp*scaleUp*c, actual)
			}
			tab.AddRow(
				fmt.Sprintf("%.1f", z),
				Pct(100*f),
				Pct(weighted.ARE()),
				Pct(weighted.Bias()),
				Pct(naive.ARE()),
				Pct(naive.Bias()),
			)
		}
	}
	return tab
}
