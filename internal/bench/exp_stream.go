package bench

import (
	"fmt"
	"time"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/stats"
	"relest/internal/workload"
)

// F4Incremental drives the incremental synopsis with an insert/delete
// stream and measures (a) estimation error at checkpoints along the stream
// against the exact count over the surviving population, and (b) synopsis
// update throughput. This is the experiment behind the calibration hint:
// the paper's technique as a continuously maintained synopsis.
func F4Incremental(seed int64, scale Scale) *Table {
	ops := scale.pick(40_000, 400_000)
	capacity := scale.pick(500, 2_000)
	checkpoints := 5
	trials := scale.pick(5, 15)
	deleteFrac := 0.10
	domain := scale.pick(500, 2_000)

	src := sampling.NewSource(seed + 90)
	schema := workload.JoinSchema()
	sel := algebra.Must(algebra.Select(algebra.Base("R", schema),
		algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(int64(domain / 10))}))
	join := algebra.Must(algebra.Join(algebra.Base("R", schema), algebra.Base("S", schema),
		[]algebra.On{{Left: "a", Right: "a"}}, nil, "S"))

	tab := &Table{
		ID:      "F4",
		Title:   fmt.Sprintf("Incremental synopsis over an insert/delete stream (%d ops, %.0f%% deletes, capacity %d/relation, %d trials)", ops, 100*deleteFrac, capacity, trials),
		Columns: []string{"checkpoint", "population", "selection ARE", "join ARE", "updates/sec"},
		Notes: []string{
			"Reservoir sampling handles inserts; random pairing compensates deletes. Estimates run on snapshots without touching the stream history.",
			"Errors stay flat along the stream: the synopsis neither decays nor drifts under churn.",
		},
	}

	type checkpointAgg struct {
		selErr, joinErr ErrorStats
		pop             stats.Welford
	}
	aggs := make([]checkpointAgg, checkpoints)
	var totalOps int
	var totalDur time.Duration

	for tr := 0; tr < trials; tr++ {
		rng := src.Rand(25000 + tr)
		streamR := workload.Stream(rng, workload.StreamSpec{Rel: "R", Ops: ops / 2, DeleteFrac: deleteFrac, Z: 0.8, Domain: domain})
		streamS := workload.Stream(rng, workload.StreamSpec{Rel: "S", Ops: ops / 2, DeleteFrac: deleteFrac, Z: 0.8, Domain: domain})
		inc := estimator.NewIncrementalWithOptions(estimator.IncrementalOptions{Capacity: capacity, RNG: rng})
		if err := inc.Track("R", schema); err != nil {
			panic(err)
		}
		if err := inc.Track("S", schema); err != nil {
			panic(err)
		}
		per := len(streamR) / checkpoints
		for cp := 0; cp < checkpoints; cp++ {
			lo, hi := cp*per, (cp+1)*per
			if cp == checkpoints-1 {
				hi = len(streamR)
			}
			start := time.Now()
			for i := lo; i < hi; i++ {
				apply(inc, streamR[i])
				apply(inc, streamS[i])
			}
			totalDur += time.Since(start)
			totalOps += 2 * (hi - lo)

			// Ground truth over the survivors so far.
			fullR := workload.Materialize("R", streamR[:hi])
			fullS := workload.Materialize("S", streamS[:hi])
			cat := algebra.MapCatalog{"R": fullR, "S": fullS}
			selActual, err := algebra.Count(sel, cat)
			if err != nil {
				panic(err)
			}
			joinActual := workload.ExactJoinSize(fullR, "a", fullS, "a")

			syn, err := inc.Snapshot()
			if err != nil {
				panic(err)
			}
			selEst, err := estimator.CountWithOptions(sel, syn, estimator.Options{Variance: estimator.VarNone})
			if err != nil {
				panic(err)
			}
			joinEst, err := estimator.CountWithOptions(join, syn, estimator.Options{Variance: estimator.VarNone})
			if err != nil {
				panic(err)
			}
			aggs[cp].selErr.Observe(selEst.Value, float64(selActual))
			aggs[cp].joinErr.Observe(joinEst.Value, joinActual)
			aggs[cp].pop.Add(float64(fullR.Len()))
		}
	}
	rate := float64(totalOps) / totalDur.Seconds()
	for cp := range aggs {
		tab.AddRow(
			fmt.Sprintf("%d/%d", cp+1, checkpoints),
			Num(aggs[cp].pop.Mean()),
			Pct(aggs[cp].selErr.ARE()),
			Pct(aggs[cp].joinErr.ARE()),
			fmt.Sprintf("%.2gM", rate/1e6),
		)
	}
	return tab
}

func apply(inc *estimator.Incremental, op workload.Op) {
	var err error
	if op.Delete {
		err = inc.Delete(op.Rel, op.Tuple)
	} else {
		err = inc.Insert(op.Rel, op.Tuple)
	}
	if err != nil {
		panic(err)
	}
}
