package bench

import (
	"fmt"
	"math/rand"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// overlappingPair builds two duplicate-free relations of JoinSchema layout
// sharing the given fraction of tuples.
func overlappingPair(rng *rand.Rand, n int, overlap float64) (*relation.Relation, *relation.Relation) {
	r1 := relation.New("R1", workload.JoinSchema())
	r2 := relation.New("R2", workload.JoinSchema())
	shared := int(overlap * float64(n))
	for i := 0; i < n; i++ {
		t := relation.Tuple{relation.Int(int64(rng.Intn(1000))), relation.Int(int64(i))}
		r1.MustAppend(t)
		if i < shared {
			r2.MustAppend(t)
		}
	}
	for i := 0; i < n-shared; i++ {
		t := relation.Tuple{relation.Int(int64(rng.Intn(1000))), relation.Int(int64(n + i))}
		r2.MustAppend(t)
	}
	return r1.Subset("R1", rng.Perm(r1.Len())), r2.Subset("R2", rng.Perm(r2.Len()))
}

// T3SetOps compares the paper's identity-based set-operation estimators
// (|A∪B| = |A|+|B|−|A∩B| etc., each piece estimated unbiasedly) against the
// naive approach of evaluating the set operation on the samples and scaling
// by N/n. The naive estimator is badly biased for ∩ and − because a match
// requires both copies of a shared tuple to be sampled (probability f²,
// scaled only by 1/f); the identity-based estimator is unbiased.
func T3SetOps(seed int64, scale Scale) *Table {
	N := scale.pick(4_000, 20_000)
	trials := scale.pick(20, 100)
	overlaps := []float64{0.1, 0.5, 0.9}
	const fraction = 0.10

	src := sampling.NewSource(seed + 30)
	tab := &Table{
		ID:      "T3",
		Title:   fmt.Sprintf("Set operations: identity-based (unbiased) vs naive scaled sample op (N=%d, f=%d%%, %d trials)", N, int(fraction*100), trials),
		Columns: []string{"op", "overlap", "actual", "paper ARE", "paper bias", "naive ARE", "naive bias"},
		Notes: []string{
			"Naive: |op(s₁,s₂)|·(N/n). For ∩ and − the shared-tuple match probability is f², so the naive estimator is biased by roughly a factor f for ∩ (and correspondingly for −/∪).",
			"The identity-based estimators stay unbiased at every overlap.",
		},
	}
	for _, ov := range overlaps {
		gen := src.Rand(int(ov * 100))
		r1, r2 := overlappingPair(gen, N, ov)
		cat := algebra.MapCatalog{"R1": r1, "R2": r2}
		br1, br2 := algebra.BaseOf(r1), algebra.BaseOf(r2)
		ops := []struct {
			name string
			e    *algebra.Expr
		}{
			{"union", algebra.Must(algebra.Union(br1, br2))},
			{"intersect", algebra.Must(algebra.Intersect(br1, br2))},
			{"diff", algebra.Must(algebra.Diff(br1, br2))},
		}
		n := int(fraction * float64(N))
		for _, op := range ops {
			actual, err := algebra.Count(op.e, cat)
			if err != nil {
				panic(err)
			}
			var paper, naive ErrorStats
			for tr := 0; tr < trials; tr++ {
				rng := src.Rand(11000 + tr)
				syn := estimator.NewSynopsis()
				if err := syn.AddDrawn(r1, n, rng); err != nil {
					panic(err)
				}
				if err := syn.AddDrawn(r2, n, rng); err != nil {
					panic(err)
				}
				est, err := estimator.CountWithOptions(op.e, syn, estimator.Options{Variance: estimator.VarNone})
				if err != nil {
					panic(err)
				}
				paper.Observe(est.Value, float64(actual))
				// Naive: run the exact evaluator over the samples, scale.
				s1, _ := syn.Relation("R1")
				s2, _ := syn.Relation("R2")
				sampleCount, err := algebra.Count(op.e, algebra.MapCatalog{"R1": s1, "R2": s2})
				if err != nil {
					panic(err)
				}
				naive.Observe(float64(sampleCount)*float64(N)/float64(n), float64(actual))
			}
			tab.AddRow(
				op.name,
				fmt.Sprintf("%.1f", ov),
				Num(float64(actual)),
				Pct(paper.ARE()),
				Pct(paper.Bias()),
				Pct(naive.ARE()),
				Pct(naive.Bias()),
			)
		}
	}
	return tab
}
