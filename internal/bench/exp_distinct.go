package bench

import (
	"fmt"
	"math"

	"relest/internal/estimator"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// T4Distinct compares the distinct-count (projection) estimators: Goodman's
// unbiased estimator, the naive scale-up, the first-order jackknife, and
// GEE, across value skews and sampling fractions. The expected story:
// Goodman is unbiased but its variance explodes at small fractions (the
// reason the paper's successors abandoned unbiasedness here); the biased
// estimators are usable throughout.
func T4Distinct(seed int64, scale Scale) *Table {
	N := scale.pick(5_000, 50_000)
	trials := scale.pick(15, 100)
	skews := []float64{0, 1.0, 2.0}
	domain := scale.pick(500, 2_000)
	fractions := []float64{0.01, 0.05, 0.20}

	src := sampling.NewSource(seed + 40)
	methods := []estimator.DistinctMethod{
		estimator.DistinctGoodman,
		estimator.DistinctScaleUp,
		estimator.DistinctJackknife,
		estimator.DistinctGEE,
	}
	tab := &Table{
		ID:      "T4",
		Title:   fmt.Sprintf("Distinct-count (π) estimators: ARE by method (N=%d, domain=%d, %d trials)", N, domain, trials),
		Columns: []string{"z", "fraction", "actual D", "goodman ARE", "scale-up ARE", "jackknife ARE", "gee ARE"},
		Notes: []string{
			"Goodman is exactly unbiased when no value multiplicity exceeds n, but its alternating falling-factorial coefficients make its variance explode at small fractions — AREs in the thousands of percent are the expected behaviour, not a bug.",
			"ARE capped at 10⁶% per trial to keep the table readable.",
		},
	}
	const areCap = 1e6
	for _, z := range skews {
		gen := src.Rand(int(z * 10))
		rel := workload.ZipfRelation(gen, "R", z, domain, N, workload.MapRandom)
		// Actual distinct values of a.
		actual := map[int64]struct{}{}
		vals := workload.AttributeValues(rel, "a")
		for _, v := range vals {
			actual[v] = struct{}{}
		}
		D := float64(len(actual))
		for _, f := range fractions {
			ares := make([]ErrorStats, len(methods))
			n := int(f * float64(N))
			for tr := 0; tr < trials; tr++ {
				rng := src.Rand(13000 + tr)
				syn := estimator.NewSynopsis()
				if err := syn.AddDrawn(rel, n, rng); err != nil {
					panic(err)
				}
				for mi, m := range methods {
					got, err := estimator.Distinct(syn, "R", []string{"a"}, m)
					if err != nil {
						panic(err)
					}
					if math.Abs(got-D)/D > areCap/100 {
						got = D * (1 + areCap/100) // cap outliers for readability
					}
					ares[mi].Observe(got, D)
				}
			}
			tab.AddRow(
				fmt.Sprintf("%.1f", z),
				Pct(100*f),
				Num(D),
				Pct(ares[0].ARE()),
				Pct(ares[1].ARE()),
				Pct(ares[2].ARE()),
				Pct(ares[3].ARE()),
			)
		}
	}
	return tab
}
