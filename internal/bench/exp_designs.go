package bench

import (
	"fmt"
	"sort"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/stats"
	"relest/internal/workload"
)

// A1Stratified is the stratified-vs-SRSWOR ablation: at equal sample size,
// how much variance does stratifying by the selection attribute remove?
// Strata aligned with the predicate make the estimator near-exact; strata
// orthogonal to it are a no-op — exactly the classical theory, measured.
func A1Stratified(seed int64, scale Scale) *Table {
	N := scale.pick(20_000, 100_000)
	trials := scale.pick(40, 200)
	sampleN := scale.pick(200, 1_000)
	const strata = 16

	src := sampling.NewSource(seed + 100)
	gen := src.Rand(0)
	// Attribute a: mildly skewed over 16 value groups; attribute b:
	// independent noise.
	rel := relation.New("R", relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindInt},
	))
	for g, c := range workload.ZipfFrequencies(0.7, strata, N) {
		for i := 0; i < c; i++ {
			rel.MustAppend(relation.Tuple{
				relation.Int(int64(g)),
				relation.Int(int64(gen.Intn(1_000_000))),
			})
		}
	}
	shuffled := rel.Subset("R", gen.Perm(rel.Len()))

	queries := []struct {
		name string
		e    *algebra.Expr
	}{
		{"aligned (a < 4)", algebra.Must(algebra.Select(algebra.BaseOf(shuffled),
			algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(4)}))},
		{"orthogonal (b < 100k)", algebra.Must(algebra.Select(algebra.BaseOf(shuffled),
			algebra.Cmp{Col: "b", Op: algebra.LT, Val: relation.Int(100_000)}))},
	}
	tab := &Table{
		ID:      "A1",
		Title:   fmt.Sprintf("Ablation: stratified vs plain SRSWOR selection estimation (N=%d, n=%d, %d trials)", N, sampleN, trials),
		Columns: []string{"query", "design", "ARE", "empirical StdDev"},
		Notes: []string{
			"Stratified by the 16 values of attribute a, proportional allocation.",
			"Aligned predicates become near-exact under stratification (within-stratum variance ~0); orthogonal predicates gain nothing — the design knob, quantified.",
		},
	}
	cat := algebra.MapCatalog{"R": shuffled}
	for _, q := range queries {
		actual, err := algebra.Count(q.e, cat)
		if err != nil {
			panic(err)
		}
		for _, design := range []string{"srswor", "stratified"} {
			var es ErrorStats
			var points stats.Welford
			for tr := 0; tr < trials; tr++ {
				rng := src.Rand(27000 + tr)
				syn := estimator.NewSynopsis()
				var err error
				if design == "srswor" {
					err = syn.AddDrawn(shuffled, sampleN, rng)
				} else {
					err = syn.AddDrawnStratified(shuffled, func(row relation.Row) int {
						return int(row.Value(0).Int64())
					}, sampleN, rng)
				}
				if err != nil {
					panic(err)
				}
				est, err := estimator.CountWithOptions(q.e, syn, estimator.Options{Variance: estimator.VarNone})
				if err != nil {
					panic(err)
				}
				es.Observe(est.Value, float64(actual))
				points.Add(est.Value)
			}
			tab.AddRow(q.name, design, Pct(es.ARE()), Num(points.StdDev()))
		}
	}
	return tab
}

// A2PageSampling is the physical-design ablation: page-level (cluster)
// sampling versus tuple-level SRSWOR at the same number of sampled tuples,
// for data laid out randomly versus clustered by the attribute. Clustered
// layouts inflate the page design's variance (tuples within a page are
// alike), while random layouts make pages as good as tuples — at a
// fraction of the I/O.
func A2PageSampling(seed int64, scale Scale) *Table {
	N := scale.pick(20_000, 100_000)
	trials := scale.pick(40, 200)
	pageSize := 50
	pages := scale.pick(8, 40) // sampled pages → n = pages·pageSize tuples

	src := sampling.NewSource(seed + 110)
	gen := src.Rand(0)

	// Attribute values: 100 groups, mildly skewed.
	var vals []int64
	for g, c := range workload.ZipfFrequencies(0.5, 100, N) {
		for i := 0; i < c; i++ {
			vals = append(vals, int64(g))
		}
	}
	build := func(name string, order []int) *relation.Relation {
		r := relation.New(name, relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
		for _, i := range order {
			r.MustAppend(relation.Tuple{relation.Int(vals[i])})
		}
		return r
	}
	randomOrder := gen.Perm(N)
	clusteredOrder := make([]int, N)
	for i := range clusteredOrder {
		clusteredOrder[i] = i
	}
	sort.SliceStable(clusteredOrder, func(i, j int) bool {
		return vals[clusteredOrder[i]] < vals[clusteredOrder[j]]
	})

	tab := &Table{
		ID:      "A2",
		Title:   fmt.Sprintf("Ablation: page-level vs tuple-level sampling at equal sampled tuples (N=%d, page=%d rows, %d pages, %d trials)", N, pageSize, pages, trials),
		Columns: []string{"layout", "design", "ARE", "I/O units touched"},
		Notes: []string{
			"Query: COUNT(σ_{a<10}). Equal sampled tuples: n = pages × pageSize for both designs.",
			"Tuple SRSWOR touches one page per sampled tuple in the worst case; page sampling touches exactly `pages` pages — the I/O argument for sampling physical blocks, paid for in variance only when the layout correlates with the attribute.",
		},
	}
	for _, layout := range []struct {
		name  string
		order []int
	}{{"random", randomOrder}, {"value-clustered", clusteredOrder}} {
		rel := build("R", layout.order)
		e := algebra.Must(algebra.Select(algebra.BaseOf(rel),
			algebra.Cmp{Col: "a", Op: algebra.LT, Val: relation.Int(10)}))
		actual, err := algebra.Count(e, algebra.MapCatalog{"R": rel})
		if err != nil {
			panic(err)
		}
		n := pages * pageSize
		for _, design := range []string{"tuple", "page"} {
			var es ErrorStats
			for tr := 0; tr < trials; tr++ {
				rng := src.Rand(29000 + tr)
				syn := estimator.NewSynopsis()
				var err error
				if design == "tuple" {
					err = syn.AddDrawn(rel, n, rng)
				} else {
					err = syn.AddDrawnPages(rel, pageSize, pages, rng)
				}
				if err != nil {
					panic(err)
				}
				est, err := estimator.CountWithOptions(e, syn, estimator.Options{Variance: estimator.VarNone})
				if err != nil {
					panic(err)
				}
				es.Observe(est.Value, float64(actual))
			}
			io := fmt.Sprintf("%d pages", pages)
			if design == "tuple" {
				io = fmt.Sprintf("up to %d pages", n)
			}
			tab.AddRow(layout.name, design, Pct(es.ARE()), io)
		}
	}
	return tab
}
