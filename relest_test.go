package relest_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"relest"
)

// TestFacadeEndToEnd drives the public API the way a downstream user would:
// generate data, build expressions, draw a synopsis, estimate, and compare
// against exact evaluation.
func TestFacadeEndToEnd(t *testing.T) {
	rng := relest.Seeded(1)
	emp, dept := relest.Company(rng, 20_000, 25)
	cat := relest.MapCatalog{"employees": emp, "departments": dept}

	// How many employees older than 50 work in departments with budget
	// over 500k?
	e := relest.Must(relest.Join(
		relest.Must(relest.Select(relest.BaseOf(emp),
			relest.Cmp{Col: "age", Op: relest.GT, Val: relest.Int(50)})),
		relest.Must(relest.Select(relest.BaseOf(dept),
			relest.Cmp{Col: "budget", Op: relest.GT, Val: relest.Int(500_000)})),
		[]relest.On{{Left: "dept_id", Right: "dept_id"}}, nil, "d"))

	actual, err := relest.ExactCount(e, cat)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := relest.Draw([]*relest.Relation{emp, dept}, 0.10, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := relest.Count(e, syn)
	if err != nil {
		t.Fatal(err)
	}
	if actual > 0 {
		rel := math.Abs(est.Value-float64(actual)) / float64(actual)
		if rel > 0.5 {
			t.Errorf("estimate %v vs actual %d (rel err %.2f)", est.Value, actual, rel)
		}
	}
	if est.StdErr < 0 || est.Lo > est.Hi {
		t.Errorf("malformed estimate %+v", est)
	}
}

func TestFacadeCSVRoundTrip(t *testing.T) {
	rng := relest.Seeded(2)
	r := relest.ZipfRelation(rng, "R", 1.0, 100, 500, relest.MapRandom)
	var buf bytes.Buffer
	if err := relest.ExportCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := relest.ImportCSV("R", bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Len() {
		t.Fatalf("round trip %d != %d", got.Len(), r.Len())
	}
	if got.Schema().Column(0).Kind != relest.KindInt {
		t.Errorf("inferred schema %s", got.Schema())
	}
}

func TestFacadeDistinct(t *testing.T) {
	rng := relest.Seeded(3)
	r := relest.ZipfRelation(rng, "R", 0.5, 200, 5_000, relest.MapRandom)
	syn := relest.NewSynopsis()
	if err := syn.AddDrawn(r, 1_000, rng); err != nil {
		t.Fatal(err)
	}
	d, err := relest.Distinct(syn, "R", []string{"a"}, relest.DistinctJackknife)
	if err != nil {
		t.Fatal(err)
	}
	if d < 100 || d > 400 {
		t.Errorf("distinct estimate %v far from 200", d)
	}
}

func TestFacadeSequentialAndDeadline(t *testing.T) {
	rng := relest.Seeded(4)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 500, N1: 10_000, N2: 10_000,
		Correlation: relest.Independent,
	})
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))

	syn, err := relest.Draw([]*relest.Relation{r1, r2}, 0.005, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := relest.SequentialCount(e, syn, rng, relest.SequentialOptions{TargetRelErr: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Value <= 0 {
		t.Errorf("sequential estimate %v", res.Final.Value)
	}

	syn2, err := relest.Draw([]*relest.Relation{r1, r2}, 0.005, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	opts := relest.Deadline(20 * time.Millisecond)
	est, steps, err := relest.DeadlineCount(e, syn2, rng, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || est.Value <= 0 {
		t.Errorf("deadline: %v steps, estimate %v", len(steps), est.Value)
	}
}

func TestFacadeIncremental(t *testing.T) {
	rng := relest.Seeded(5)
	inc := relest.NewIncremental(300, rng)
	if err := inc.Track("R", relest.JoinSchema()); err != nil {
		t.Fatal(err)
	}
	for _, op := range relest.Stream(rng, relest.StreamSpec{Rel: "R", Ops: 5_000, DeleteFrac: 0.2, Z: 0.5, Domain: 300}) {
		var err error
		if op.Delete {
			err = inc.Delete(op.Rel, op.Tuple)
		} else {
			err = inc.Insert(op.Rel, op.Tuple)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	syn, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	e := relest.Must(relest.Select(relest.Base("R", relest.JoinSchema()),
		relest.Cmp{Col: "a", Op: relest.LT, Val: relest.Int(30)}))
	est, err := relest.Count(e, syn)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value < 0 {
		t.Errorf("estimate %v", est.Value)
	}
}

func TestFacadeSetOpsAndExactEval(t *testing.T) {
	rng := relest.Seeded(6)
	r1 := relest.ZipfRelation(rng, "R1", 0, 50, 400, relest.MapRandom)
	r2 := relest.ZipfRelation(rng, "R2", 0, 50, 400, relest.MapRandom)
	u := relest.Must(relest.Union(relest.BaseOf(r1), relest.BaseOf(r2)))
	cat := relest.MapCatalog{"R1": r1, "R2": r2}
	res, err := relest.ExactEval(u, cat)
	if err != nil {
		t.Fatal(err)
	}
	// ids are disjoint across the two generated relations? They are both
	// 0..399, so tuples can coincide only when (a, id) pairs match.
	if res.Len() < 400 || res.Len() > 800 {
		t.Errorf("union size %d", res.Len())
	}
	syn, err := relest.Draw([]*relest.Relation{r1, r2}, 0.25, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := relest.CountWithOptions(u, syn, relest.Options{Variance: relest.VarSplitSample})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(est.Value-float64(res.Len())) / float64(res.Len())
	if rel > 0.5 {
		t.Errorf("union estimate %v vs %d", est.Value, res.Len())
	}
}

func TestFacadeSumAvg(t *testing.T) {
	rng := relest.Seeded(8)
	emp, _ := relest.Company(rng, 10_000, 10)
	syn := relest.NewSynopsis()
	if err := syn.AddDrawn(emp, 1_000, rng); err != nil {
		t.Fatal(err)
	}
	sel := relest.Must(relest.Select(relest.BaseOf(emp),
		relest.Cmp{Col: "age", Op: relest.GT, Val: relest.Int(40)}))
	sum, err := relest.Sum(sel, "salary", syn)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Value <= 0 || sum.Lo > sum.Hi {
		t.Errorf("sum estimate %+v", sum)
	}
	avg, err := relest.Avg(sel, "salary", syn, relest.Options{Variance: relest.VarNone})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Avg < 30_000 || avg.Avg > 120_000 {
		t.Errorf("avg salary %v implausible", avg.Avg)
	}
}

func TestFacadeDesigns(t *testing.T) {
	rng := relest.Seeded(9)
	r := relest.ZipfRelation(rng, "R", 0.5, 100, 5_000, relest.MapRandom)
	sel := relest.Must(relest.Select(relest.BaseOf(r),
		relest.Cmp{Col: "a", Op: relest.LT, Val: relest.Int(10)}))
	exact, err := relest.ExactCount(sel, relest.MapCatalog{"R": r})
	if err != nil {
		t.Fatal(err)
	}
	// Page design.
	pageSyn := relest.NewSynopsis()
	if err := pageSyn.AddDrawnPages(r, 50, 10, rng); err != nil {
		t.Fatal(err)
	}
	est, err := relest.Count(sel, pageSyn)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-float64(exact))/float64(exact) > 1.0 {
		t.Errorf("page estimate %v vs %d", est.Value, exact)
	}
	// Stratified design.
	stratSyn := relest.NewSynopsis()
	err = stratSyn.AddDrawnStratified(r, func(row relest.Row) int {
		return int(row.Value(0).Int64()) / 10
	}, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err = relest.Count(sel, stratSyn)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-float64(exact))/float64(exact) > 0.5 {
		t.Errorf("stratified estimate %v vs %d", est.Value, exact)
	}
}

func TestFacadePlanner(t *testing.T) {
	rng := relest.Seeded(10)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 100, N1: 2_000, N2: 1_000,
		Correlation: relest.Independent,
	})
	r2c := relest.NewRelation("S", relest.MustSchema(
		relest.Col("a", relest.KindInt), relest.Col("id", relest.KindInt)))
	r2.Each(func(i int, t relest.Tuple) bool {
		_ = r2c.Append(t)
		return true
	})
	cat := relest.MapCatalog{"R1": r1, "S": r2c}
	q := relest.PlanQuery{
		Relations: []string{"R1", "S"},
		Schemas:   map[string]*relest.Schema{"R1": r1.Schema(), "S": r2c.Schema()},
		Edges:     []relest.PlanEdge{{A: "R1", B: "S", ACol: "a", BCol: "a"}},
	}
	syn, err := relest.Draw([]*relest.Relation{r1, r2c}, 0.1, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := relest.Optimize(q, relest.SamplingOracle(syn))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != 2 || plan.EstCost <= 0 {
		t.Errorf("plan %+v", plan)
	}
	tc, err := relest.PlanTrueCost(q, plan.Order, cat)
	if err != nil {
		t.Fatal(err)
	}
	if tc <= 0 {
		t.Errorf("true cost %v", tc)
	}
	oracle, err := relest.NewCatalogOracle(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relest.Optimize(q, oracle); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeProjectRejectedProperly(t *testing.T) {
	rng := relest.Seeded(7)
	r := relest.ZipfRelation(rng, "R", 0, 50, 100, relest.MapRandom)
	syn := relest.NewSynopsis()
	if err := syn.AddDrawn(r, 50, rng); err != nil {
		t.Fatal(err)
	}
	p := relest.Must(relest.Project(relest.BaseOf(r), "a"))
	if _, err := relest.Count(p, syn); err == nil {
		t.Error("COUNT over π must direct users to Distinct")
	}
}
