// Joinsize: the paper's core use case — join selectivity estimation for
// query optimization. Generates Zipf-skewed relation pairs under three
// join-attribute correlations and shows how the estimate converges with
// the sampling fraction, including the unbiasedness of the point estimate
// and the calibration of the closed-form variance.
//
//	go run ./examples/joinsize
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"relest"
)

func main() {
	const n = 100_000
	const domain = 10_000

	for _, corr := range []relest.Correlation{relest.Positive, relest.Independent, relest.Negative} {
		rng := relest.Seeded(7)
		r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
			Z1: 0.5, Z2: 1.0, Domain: domain, N1: n, N2: n, Correlation: corr,
		})
		e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
			[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
		exact, err := relest.ExactCount(e, relest.MapCatalog{"R1": r1, "R2": r2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("correlation=%v, exact join size %d\n", corr, exact)
		fmt.Printf("  %-10s %-14s %-12s %-10s\n", "fraction", "estimate", "rel.err", "CI covers")
		for _, f := range []float64{0.01, 0.02, 0.05, 0.10, 0.20} {
			syn, err := relest.Draw([]*relest.Relation{r1, r2}, f, 20, rng)
			if err != nil {
				log.Fatal(err)
			}
			// Sample-only pins the sampling estimator this example is
			// about; relest.New(syn) without the option would answer the
			// plain equi-join from the sketch tier instead.
			h := relest.New(syn, relest.WithTierPolicy(relest.TierSampleOnly))
			est, err := h.Count(context.Background(), relest.Request{Expr: e})
			if err != nil {
				log.Fatal(err)
			}
			rel := math.Abs(est.Value-float64(exact)) / float64(exact)
			covers := est.Lo <= float64(exact) && float64(exact) <= est.Hi
			fmt.Printf("  %-10s %-14.0f %-12.4f %-10v\n",
				fmt.Sprintf("%.0f%%", 100*f), est.Value, rel, covers)
		}
		fmt.Println()
	}
}
