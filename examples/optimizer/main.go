// Optimizer: the paper's motivating application — join-order optimization
// with sampling-based cardinality estimates. Builds a 3-relation star
// query whose join attributes are correlated in a way the System-R catalog
// (independence assumption) cannot see, then compares the plans chosen by
// three oracles: the sampling estimators, the AVI catalog, and exact
// counts.
//
//	go run ./examples/optimizer
package main

import (
	"fmt"
	"log"
	"strings"

	"relest"
)

func main() {
	rng := relest.Seeded(17)
	const nA, domain = 8_000, 500

	// A(u, k): u is Zipf-skewed (heavy hitters at low values), k uniform.
	schemaA := relest.MustSchema(relest.Col("u", relest.KindInt), relest.Col("k", relest.KindInt), relest.Col("aid", relest.KindInt))
	a := relest.NewRelation("A", schemaA)
	zipf := relest.ZipfRelation(rng, "Z", 1.2, domain, nA, relest.MapSmooth)
	zipfVals := make([]int64, 0, nA)
	zipf.EachRow(func(i int, row relest.Row) bool {
		zipfVals = append(zipfVals, row.Value(0).Int64())
		return true
	})
	for i := 0; i < nA; i++ {
		if err := a.AppendRow(relest.Int(zipfVals[i]), relest.Int(int64(rng.Intn(domain))), relest.Int(int64(i))); err != nil {
			log.Fatal(err)
		}
	}
	// B(u): same skew, ALIGNED heavy hitters → A⋈B explodes beyond what
	// |A||B|/d predicts.
	schemaB := relest.MustSchema(relest.Col("u", relest.KindInt), relest.Col("bid", relest.KindInt))
	b := relest.NewRelation("B", schemaB)
	zb := relest.ZipfRelation(rng, "Z2", 1.2, domain, nA/20, relest.MapSmooth)
	zb.EachRow(func(i int, row relest.Row) bool {
		if err := b.AppendRow(row.Value(0), relest.Int(int64(i))); err != nil {
			log.Fatal(err)
		}
		return true
	})
	// C(k): uniform — the AVI estimate for A⋈C is essentially exact.
	schemaC := relest.MustSchema(relest.Col("k", relest.KindInt), relest.Col("cid", relest.KindInt))
	c := relest.NewRelation("C", schemaC)
	for i := 0; i < 3*nA/20; i++ {
		if err := c.AppendRow(relest.Int(int64(rng.Intn(domain))), relest.Int(int64(i))); err != nil {
			log.Fatal(err)
		}
	}

	cat := relest.MapCatalog{"A": a, "B": b, "C": c}
	q := relest.PlanQuery{
		Relations: []string{"A", "B", "C"},
		Schemas:   map[string]*relest.Schema{"A": schemaA, "B": schemaB, "C": schemaC},
		Edges: []relest.PlanEdge{
			{A: "A", B: "B", ACol: "u", BCol: "u"},
			{A: "A", B: "C", ACol: "k", BCol: "k"},
		},
	}

	// The three oracles.
	syn, err := relest.Draw([]*relest.Relation{a, b, c}, 0.05, 100, rng)
	if err != nil {
		log.Fatal(err)
	}
	catalogOracle, err := relest.NewCatalogOracle(q, cat)
	if err != nil {
		log.Fatal(err)
	}
	oracles := []struct {
		name   string
		oracle relest.CardinalityOracle
	}{
		{"exact counts", relest.ExactOracle(cat)},
		{"sampling (5%)", relest.SamplingOracle(syn)},
		{"System-R catalog (AVI)", catalogOracle},
	}

	fmt.Printf("query: A ⋈ B on u, A ⋈ C on k   (|A|=%d, |B|=%d, |C|=%d)\n", a.Len(), b.Len(), c.Len())
	fmt.Printf("A.u and B.u share Zipf(1.2) heavy hitters; A.k and C.k are uniform.\n\n")
	fmt.Printf("%-24s %-14s %-16s %-16s\n", "oracle", "chosen order", "estimated cost", "TRUE cost")
	for _, o := range oracles {
		plan, err := relest.Optimize(q, o.oracle)
		if err != nil {
			log.Fatal(err)
		}
		trueCost, err := relest.PlanTrueCost(q, plan.Order, cat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %-14s %-16.0f %-16.0f\n",
			o.name, strings.Join(plan.Order, "⋈"), plan.EstCost, trueCost)
	}
	fmt.Println("\nThe catalog's independence assumption underestimates A⋈B (aligned")
	fmt.Println("skew) and can start with the explosive join; the sampling oracle")
	fmt.Println("estimates each prefix as a whole and ranks the orders correctly.")
}
