// Quickstart: estimate the size of a selection and of a select-join query
// over a generated employees/departments database from a 5% sample, and
// compare with the exact answers.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"relest"
)

func main() {
	rng := relest.Seeded(2024)

	// A company with 200k employees in 40 departments.
	employees, departments := relest.Company(rng, 200_000, 40)
	cat := relest.MapCatalog{"employees": employees, "departments": departments}

	// Q1: how many employees are older than 55?
	q1 := relest.Must(relest.Select(relest.BaseOf(employees),
		relest.Cmp{Col: "age", Op: relest.GT, Val: relest.Int(55)}))

	// Q2: how many employees older than 50 are in departments with a
	// budget above 600k?
	q2 := relest.Must(relest.Join(
		relest.Must(relest.Select(relest.BaseOf(employees),
			relest.Cmp{Col: "age", Op: relest.GT, Val: relest.Int(50)})),
		relest.Must(relest.Select(relest.BaseOf(departments),
			relest.Cmp{Col: "budget", Op: relest.GT, Val: relest.Int(600_000)})),
		[]relest.On{{Left: "dept_id", Right: "dept_id"}}, nil, "d"))

	// One synopsis serves every query: a 5% sample of each relation
	// (small relations like departments fall below the minimum sample
	// size and are simply kept whole — a census has no sampling error).
	syn, err := relest.Draw([]*relest.Relation{employees, departments}, 0.05, 1000, rng)
	if err != nil {
		log.Fatal(err)
	}

	// One estimation handle serves every query. The default tier policy
	// (auto) answers each counting-polynomial term from the cheapest
	// synopsis tier that meets the precision target — sketches for plain
	// equi-joins, the sample otherwise — and reports which tier answered.
	est := relest.New(syn)
	ctx := context.Background()

	queries := []struct {
		name string
		expr *relest.Expr
	}{
		{"Q1 (selection)", q1},
		{"Q2 (select-join)", q2},
	}
	for _, qc := range queries {
		name, q := qc.name, qc.expr
		res, err := est.Count(ctx, relest.Request{Expr: q})
		if err != nil {
			log.Fatal(err)
		}
		exact, err := relest.ExactCount(q, cat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", name)
		fmt.Printf("  estimate: %10.0f   (stderr %.0f, variance via %s, tier %s)\n",
			res.Value, res.StdErr, res.VarianceMethod, res.Tier.Answered)
		fmt.Printf("  95%% CI:   [%10.0f, %10.0f]\n", res.Lo, res.Hi)
		fmt.Printf("  exact:    %10d   (inside CI: %v)\n\n",
			exact, res.Lo <= float64(exact) && float64(exact) <= res.Hi)
	}

	// Distinct department count from the employees sample alone.
	d, err := relest.Distinct(syn, "employees", []string{"dept_id"}, relest.DistinctJackknife)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct departments referenced by employees: estimated %.1f, actual 40\n", d)
}
