// Server: the estimation service driven end to end from Go — start an
// in-process relestd, register a generated dataset, build a synopsis,
// run a plain and a deadline-bounded estimate over HTTP, scrape the
// merged metrics page, and drain. The same lifecycle `make smoke`
// exercises against the real binary.
//
//	go run ./examples/server
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"relest/internal/server"
)

func post(base, path string, body any) ([]byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	out, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("POST %s: %d %s", path, resp.StatusCode, out)
	}
	return out, nil
}

func main() {
	srv := server.New(server.Config{Addr: "127.0.0.1:0", QueueDepth: 8})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	base := "http://" + srv.Addr()
	fmt.Println("serving on", srv.Addr())

	// Two Zipfian relations sharing a join column, then a static synopsis:
	// a seeded 500-row SRSWOR draw per relation, made once at creation.
	if _, err := post(base, "/v1/generate", map[string]any{
		"kind": "zipf-pair", "n": 20000, "domain": 1000, "seed": 7,
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := post(base, "/v1/synopses/main", map[string]any{
		"kind": "static", "relations": map[string]int{"R1": 500, "R2": 500}, "seed": 9,
	}); err != nil {
		log.Fatal(err)
	}

	// A plain estimate: one evaluation over the registered sample. The
	// response is byte-identical to calling the library with the same seed.
	out, err := post(base, "/v1/estimate", map[string]any{
		"query": "count(join(R1, R2, on a = a))", "synopsis": "main", "seed": 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain:    %s", out)

	// A deadline-bounded estimate: the server clones the synopsis and
	// grows the sample until the budget runs out; the answer is the
	// estimate and CI of the last completed round.
	out, err = post(base, "/v1/estimate", map[string]any{
		"query": "count(join(R1, R2, on a = a))", "synopsis": "main",
		"mode": "deadline", "budget_ms": 50, "seed": 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deadline: %s", out)

	// One scrape carries both the HTTP families (relestd_*) and the
	// estimator families (relest_*) for the work just done.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "relestd_requests_total") ||
			strings.HasPrefix(line, "relestd_queue_depth") ||
			strings.HasPrefix(line, "relest_samples_rows_total") {
			fmt.Println("metric:  ", line)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
