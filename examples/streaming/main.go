// Streaming: continuous estimation over insert/delete streams with the
// incrementally maintained synopsis. Two streams of events flow in (think
// change-data-capture feeds of two tables); at checkpoints a snapshot of
// the bounded samples answers a join-size query without touching the
// stream history.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"relest"
)

func main() {
	rng := relest.Seeded(99)
	const ops = 200_000
	const capacity = 2_000 // sampled tuples kept per relation

	inc := relest.NewIncrementalWithOptions(relest.IncrementalOptions{Capacity: capacity, RNG: rng})
	for _, name := range []string{"R", "S"} {
		if err := inc.Track(name, relest.JoinSchema()); err != nil {
			log.Fatal(err)
		}
	}
	streamR := relest.Stream(rng, relest.StreamSpec{Rel: "R", Ops: ops, DeleteFrac: 0.15, Z: 0.8, Domain: 2_000})
	streamS := relest.Stream(rng, relest.StreamSpec{Rel: "S", Ops: ops, DeleteFrac: 0.15, Z: 0.8, Domain: 2_000})

	join := relest.Must(relest.Join(
		relest.Base("R", relest.JoinSchema()),
		relest.Base("S", relest.JoinSchema()),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "S"))

	// Shadow frequency maps track the exact join size for validation (a
	// real deployment would not have them — that is the point of the
	// synopsis). joinSize = Σ_v freqR[v]·freqS[v], maintained per event.
	freqR := map[int64]int64{}
	freqS := map[int64]int64{}
	var joinSize, popR int64

	applyR := func(op relest.Op) {
		v := op.Tuple[0].Int64()
		var err error
		if op.Delete {
			err = inc.Delete(op.Rel, op.Tuple)
			freqR[v]--
			joinSize -= freqS[v]
			popR--
		} else {
			err = inc.Insert(op.Rel, op.Tuple)
			freqR[v]++
			joinSize += freqS[v]
			popR++
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	applyS := func(op relest.Op) {
		v := op.Tuple[0].Int64()
		var err error
		if op.Delete {
			err = inc.Delete(op.Rel, op.Tuple)
			freqS[v]--
			joinSize -= freqR[v]
		} else {
			err = inc.Insert(op.Rel, op.Tuple)
			freqS[v]++
			joinSize += freqR[v]
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%-12s %-12s %-14s %-14s %-10s %-8s\n", "events", "population", "estimate", "exact", "rel.err", "tier")
	const checkpoints = 8
	per := ops / checkpoints
	for cp := 1; cp <= checkpoints; cp++ {
		for i := (cp - 1) * per; i < cp*per; i++ {
			applyR(streamR[i])
			applyS(streamS[i])
		}
		syn, err := inc.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		// The snapshot carries the stream-maintained sketches, so the
		// default auto tier policy answers this plain equi-join from the
		// sketch tier — summarizing the whole stream, not just the bounded
		// sample — and escalates to the sample for anything else.
		h := relest.New(syn, relest.WithOptions(relest.Options{Variance: relest.VarNone}))
		res, err := h.Count(context.Background(), relest.Request{Expr: join})
		if err != nil {
			log.Fatal(err)
		}
		rel := math.NaN()
		if joinSize > 0 {
			rel = math.Abs(res.Value-float64(joinSize)) / float64(joinSize)
		}
		fmt.Printf("%-12d %-12d %-14.0f %-14d %-10.4f %-8s\n",
			2*cp*per, popR, res.Value, joinSize, rel, res.Tier.Answered)
	}
	fmt.Printf("\nsynopsis held at most %d tuples per relation throughout.\n", capacity)
}
