// Timebudget: the CASE-DB mode the estimators were built for — real-time
// answers under hard time constraints. Shows (1) deadline-bounded
// estimation, where the sample grows until the clock runs out and the CI
// at the deadline is the answer; and (2) double sampling, where a pilot
// sample sizes the final sample for a requested precision.
//
//	go run ./examples/timebudget
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"relest"
)

func main() {
	rng := relest.Seeded(5)
	const n = 500_000
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 20_000, N1: n, N2: n,
		Correlation: relest.Independent,
	})
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))

	start := time.Now()
	exact, err := relest.ExactCount(e, relest.MapCatalog{"R1": r1, "R2": r2})
	if err != nil {
		log.Fatal(err)
	}
	exactDur := time.Since(start)
	fmt.Printf("exact join size %d took %s\n\n", exact, exactDur.Round(time.Millisecond))

	fmt.Println("deadline-bounded estimation:")
	fmt.Printf("  %-10s %-12s %-10s %-14s\n", "budget", "estimate", "rel.err", "final sample/rel")
	for _, budget := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond} {
		syn, err := relest.Draw([]*relest.Relation{r1, r2}, 0.0001, 20, rng)
		if err != nil {
			log.Fatal(err)
		}
		est, history, err := relest.DeadlineCountContext(context.Background(), e, syn, relest.DeadlineOptions{
			Budget:      budget,
			InitialSize: 200,
			Estimate:    relest.Options{Variance: relest.VarNone},
			RNG:         rng,
		})
		if err != nil {
			log.Fatal(err)
		}
		last := history[len(history)-1]
		rel := math.Abs(est.Value-float64(exact)) / float64(exact)
		fmt.Printf("  %-10s %-12.0f %-10.4f %-14d\n", budget, est.Value, rel, last.SampleSizes["R1"])
	}

	fmt.Println("\ndouble sampling to a precision target:")
	fmt.Printf("  %-10s %-12s %-10s %-14s %-10s\n", "target", "estimate", "rel.err", "final sample/rel", "target met")
	for _, target := range []float64{0.10, 0.05, 0.02} {
		syn, err := relest.Draw([]*relest.Relation{r1, r2}, 0.0001, 50, rng)
		if err != nil {
			log.Fatal(err)
		}
		res, err := relest.SequentialCountContext(context.Background(), e, syn, relest.SequentialOptions{
			TargetRelErr: target,
			PilotSize:    500,
			RNG:          rng,
		})
		if err != nil {
			log.Fatal(err)
		}
		rel := math.Abs(res.Final.Value-float64(exact)) / float64(exact)
		fmt.Printf("  %-10s %-12.0f %-10.4f %-14d %-10v\n",
			fmt.Sprintf("±%.0f%%", 100*target), res.Final.Value, rel, res.SampleSizes["R1"], res.TargetMet)
	}
}
