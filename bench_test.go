// Benchmarks regenerating every table and figure of the evaluation
// (DESIGN.md experiment index T1–T7, F1–F4) at quick scale, plus
// micro-benchmarks for the synopsis hot paths. Run the full-scale tables
// with `go run ./cmd/experiments -full`.
package relest_test

import (
	"runtime"
	"testing"

	"relest"
	"relest/internal/bench"
	"relest/internal/relation"
	"relest/internal/sketch"
)

// experimentBench runs one experiment table per iteration.
func experimentBench(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tab := e.Run(42, bench.Scale{Quick: true})
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// One benchmark per table/figure of the evaluation.

func BenchmarkT1Selection(b *testing.B)   { experimentBench(b, "T1") }
func BenchmarkT2Join(b *testing.B)        { experimentBench(b, "T2") }
func BenchmarkT3SetOps(b *testing.B)      { experimentBench(b, "T3") }
func BenchmarkT4Distinct(b *testing.B)    { experimentBench(b, "T4") }
func BenchmarkT5Variance(b *testing.B)    { experimentBench(b, "T5") }
func BenchmarkT6Baselines(b *testing.B)   { experimentBench(b, "T6") }
func BenchmarkT7SelfJoin(b *testing.B)    { experimentBench(b, "T7") }
func BenchmarkF1Composite(b *testing.B)   { experimentBench(b, "F1") }
func BenchmarkF2Coverage(b *testing.B)    { experimentBench(b, "F2") }
func BenchmarkF3Deadline(b *testing.B)    { experimentBench(b, "F3") }
func BenchmarkF4Incremental(b *testing.B) { experimentBench(b, "F4") }

// Micro-benchmarks: the synopsis hot paths behind the tables.

// BenchmarkPointEstimateJoin measures one join COUNT estimate from fixed
// samples (n=1000 per relation) — the per-query cost of the method.
func BenchmarkPointEstimateJoin(b *testing.B) {
	rng := relest.Seeded(1)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
	syn := relest.NewSynopsis()
	if err := syn.AddDrawn(r1, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	if err := syn.AddDrawn(r2, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relest.CountWithOptions(e, syn, relest.Options{Variance: relest.VarNone}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointEstimateWithVariance includes the closed-form variance and
// CI construction.
func BenchmarkPointEstimateWithVariance(b *testing.B) {
	rng := relest.Seeded(2)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
	syn := relest.NewSynopsis()
	if err := syn.AddDrawn(r1, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	if err := syn.AddDrawn(r2, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relest.Count(e, syn); err != nil {
			b.Fatal(err)
		}
	}
}

// varianceBenchSynopsis builds the shared join fixture for the variance
// benchmarks: 20k-row relations, n=1000 samples.
func varianceBenchSynopsis(b *testing.B, seed int64) (*relest.Expr, *relest.Synopsis) {
	b.Helper()
	rng := relest.Seeded(seed)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
	syn := relest.NewSynopsis()
	if err := syn.AddDrawn(r1, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	if err := syn.AddDrawn(r2, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	return e, syn
}

// benchCountVariance measures a full estimate (point + variance) with the
// given method and worker bound.
func benchCountVariance(b *testing.B, method relest.VarianceMethod, workers int) {
	e, syn := varianceBenchSynopsis(b, 6)
	opts := relest.Options{Variance: method, Seed: 42, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relest.CountWithOptions(e, syn, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJackknifeVariance measures the delete-one jackknife over the
// join fixture (2000 sampling units): the single-pass engine derives all
// replicates from one enumeration instead of 2000 re-evaluations.
func BenchmarkJackknifeVariance(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchCountVariance(b, relest.VarJackknife, 1) })
	b.Run("parallel", func(b *testing.B) { benchCountVariance(b, relest.VarJackknife, 0) })
}

// BenchmarkSplitSampleVariance measures the g=8 replicate method; the
// parallel variant fans the replicates across workers.
func BenchmarkSplitSampleVariance(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchCountVariance(b, relest.VarSplitSample, 1) })
	b.Run("parallel", func(b *testing.B) { benchCountVariance(b, relest.VarSplitSample, 0) })
}

// BenchmarkIncrementalUpdate measures the per-tuple cost of maintaining
// the incremental synopsis (reservoir + random pairing).
func BenchmarkIncrementalUpdate(b *testing.B) {
	rng := relest.Seeded(3)
	inc := relest.NewIncremental(1_000, rng)
	if err := inc.Track("R", relest.JoinSchema()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := relest.Tuple{relest.Int(int64(i % 5_000)), relest.Int(int64(i))}
		if err := inc.Insert("R", t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketchUpdate measures the per-tuple cost of the AMS baseline at
// the default 100 atomic counters, for comparison with the sampling
// synopsis updates.
func BenchmarkSketchUpdate(b *testing.B) {
	s := sketch.New(sketch.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i % 5_000))
	}
}

// BenchmarkSynopsisDraw measures drawing a fresh 1% SRSWOR synopsis from a
// 100k-row relation.
func BenchmarkSynopsisDraw(b *testing.B) {
	rng := relest.Seeded(4)
	r := relest.ZipfRelation(rng, "R", 0.5, 10_000, 100_000, relest.MapRandom)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn := relest.NewSynopsis()
		if err := syn.AddDrawn(r, 1_000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// footprintFixture is the 2×20k-row join fixture the storage benchmarks
// share (same spec and seed as the pre-columnar baseline in BENCH_5.json).
func footprintFixture() (*relest.Relation, *relest.Relation) {
	rng := relest.Seeded(1)
	return relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
}

// BenchmarkBuildIndex measures the typed hash index build over the 20k-row
// join fixture (the per-plan cost of every hash join and term evaluation).
func BenchmarkBuildIndex(b *testing.B) {
	r1, _ := footprintFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := relation.BuildIndex(r1, []int{0})
		if ix.Buckets() == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkRelationFootprint reports the resident bytes per row of the
// join fixture two ways: heap-bytes/row is the GC-measured heap growth
// from building both relations (comparable to the pre-columnar baseline,
// measured identically), bytes/row is the engine's own accounting
// (column vectors + dictionaries + null bitmaps, Relation.Bytes).
func BenchmarkRelationFootprint(b *testing.B) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	r1, r2 := footprintFixture()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	rows := float64(r1.Len() + r2.Len())
	heap := float64(m1.HeapAlloc - m0.HeapAlloc)
	accounted := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accounted = r1.Bytes() + r2.Bytes()
	}
	b.ReportMetric(heap/rows, "heap-bytes/row")
	b.ReportMetric(float64(accounted)/rows, "bytes/row")
}

// BenchmarkExactCountJoin is the cost the estimators avoid: the exact
// hash-join COUNT over the full relations.
func BenchmarkExactCountJoin(b *testing.B) {
	rng := relest.Seeded(5)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
	cat := relest.MapCatalog{"R1": r1, "R2": r2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relest.ExactCount(e, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA1Stratified(b *testing.B)   { experimentBench(b, "A1") }
func BenchmarkA2PageSampling(b *testing.B) { experimentBench(b, "A2") }

func BenchmarkA3Planner(b *testing.B) { experimentBench(b, "A3") }
