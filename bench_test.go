// Benchmarks regenerating every table and figure of the evaluation
// (DESIGN.md experiment index T1–T7, F1–F4) at quick scale, plus
// micro-benchmarks for the synopsis hot paths. Run the full-scale tables
// with `go run ./cmd/experiments -full`.
package relest_test

import (
	"context"
	"runtime"
	"testing"

	"relest"
	"relest/internal/algebra"
	"relest/internal/bench"
	"relest/internal/obs"
	"relest/internal/relation"
	"relest/internal/sketch"
)

// experimentBench runs one experiment table per iteration.
func experimentBench(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tab := e.Run(42, bench.Scale{Quick: true})
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// One benchmark per table/figure of the evaluation.

func BenchmarkT1Selection(b *testing.B)   { experimentBench(b, "T1") }
func BenchmarkT2Join(b *testing.B)        { experimentBench(b, "T2") }
func BenchmarkT3SetOps(b *testing.B)      { experimentBench(b, "T3") }
func BenchmarkT4Distinct(b *testing.B)    { experimentBench(b, "T4") }
func BenchmarkT5Variance(b *testing.B)    { experimentBench(b, "T5") }
func BenchmarkT6Baselines(b *testing.B)   { experimentBench(b, "T6") }
func BenchmarkT7SelfJoin(b *testing.B)    { experimentBench(b, "T7") }
func BenchmarkF1Composite(b *testing.B)   { experimentBench(b, "F1") }
func BenchmarkF2Coverage(b *testing.B)    { experimentBench(b, "F2") }
func BenchmarkF3Deadline(b *testing.B)    { experimentBench(b, "F3") }
func BenchmarkF4Incremental(b *testing.B) { experimentBench(b, "F4") }

// Micro-benchmarks: the synopsis hot paths behind the tables.

// BenchmarkPointEstimateJoin measures one join COUNT estimate from fixed
// samples (n=1000 per relation) — the per-query cost of the method.
func BenchmarkPointEstimateJoin(b *testing.B) {
	rng := relest.Seeded(1)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
	syn := relest.NewSynopsis()
	if err := syn.AddDrawn(r1, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	if err := syn.AddDrawn(r2, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relest.CountWithOptions(e, syn, relest.Options{Variance: relest.VarNone}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointEstimateWithVariance includes the closed-form variance and
// CI construction.
func BenchmarkPointEstimateWithVariance(b *testing.B) {
	rng := relest.Seeded(2)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
	syn := relest.NewSynopsis()
	if err := syn.AddDrawn(r1, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	if err := syn.AddDrawn(r2, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relest.Count(e, syn); err != nil {
			b.Fatal(err)
		}
	}
}

// varianceBenchSynopsis builds the shared join fixture for the variance
// benchmarks: 20k-row relations, n=1000 samples.
func varianceBenchSynopsis(b *testing.B, seed int64) (*relest.Expr, *relest.Synopsis) {
	b.Helper()
	rng := relest.Seeded(seed)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
	syn := relest.NewSynopsis()
	if err := syn.AddDrawn(r1, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	if err := syn.AddDrawn(r2, 1_000, rng); err != nil {
		b.Fatal(err)
	}
	return e, syn
}

// benchCountVariance measures a full estimate (point + variance) with the
// given method and worker bound.
func benchCountVariance(b *testing.B, method relest.VarianceMethod, workers int) {
	e, syn := varianceBenchSynopsis(b, 6)
	opts := relest.Options{Variance: method, Seed: 42, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relest.CountWithOptions(e, syn, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJackknifeVariance measures the delete-one jackknife over the
// join fixture (2000 sampling units): the single-pass engine derives all
// replicates from one enumeration instead of 2000 re-evaluations.
func BenchmarkJackknifeVariance(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchCountVariance(b, relest.VarJackknife, 1) })
	b.Run("parallel", func(b *testing.B) { benchCountVariance(b, relest.VarJackknife, 0) })
}

// BenchmarkSplitSampleVariance measures the g=8 replicate method; the
// parallel variant fans the replicates across workers.
func BenchmarkSplitSampleVariance(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchCountVariance(b, relest.VarSplitSample, 1) })
	b.Run("parallel", func(b *testing.B) { benchCountVariance(b, relest.VarSplitSample, 0) })
}

// BenchmarkIncrementalUpdate measures the per-tuple cost of maintaining
// the incremental synopsis (reservoir + random pairing).
func BenchmarkIncrementalUpdate(b *testing.B) {
	rng := relest.Seeded(3)
	inc := relest.NewIncremental(1_000, rng)
	if err := inc.Track("R", relest.JoinSchema()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := relest.Tuple{relest.Int(int64(i % 5_000)), relest.Int(int64(i))}
		if err := inc.Insert("R", t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketchUpdate measures the per-tuple cost of the AMS baseline at
// the default 100 atomic counters, for comparison with the sampling
// synopsis updates.
func BenchmarkSketchUpdate(b *testing.B) {
	s := sketch.New(sketch.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i % 5_000))
	}
}

// BenchmarkSynopsisDraw measures drawing a fresh 1% SRSWOR synopsis from a
// 100k-row relation.
func BenchmarkSynopsisDraw(b *testing.B) {
	rng := relest.Seeded(4)
	r := relest.ZipfRelation(rng, "R", 0.5, 10_000, 100_000, relest.MapRandom)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn := relest.NewSynopsis()
		if err := syn.AddDrawn(r, 1_000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// footprintFixture is the 2×20k-row join fixture the storage benchmarks
// share (same spec and seed as the pre-columnar baseline in BENCH_5.json).
func footprintFixture() (*relest.Relation, *relest.Relation) {
	rng := relest.Seeded(1)
	return relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
}

// BenchmarkBuildIndex measures the typed hash index build over the 20k-row
// join fixture (the per-plan cost of every hash join and term evaluation).
func BenchmarkBuildIndex(b *testing.B) {
	r1, _ := footprintFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := relation.BuildIndex(r1, []int{0})
		if ix.Buckets() == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkRelationFootprint reports the resident bytes per row of the
// join fixture two ways: heap-bytes/row is the GC-measured heap growth
// from building both relations (comparable to the pre-columnar baseline,
// measured identically), bytes/row is the engine's own accounting
// (column vectors + dictionaries + null bitmaps, Relation.Bytes).
func BenchmarkRelationFootprint(b *testing.B) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	r1, r2 := footprintFixture()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	rows := float64(r1.Len() + r2.Len())
	heap := float64(m1.HeapAlloc - m0.HeapAlloc)
	accounted := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accounted = r1.Bytes() + r2.Bytes()
	}
	b.ReportMetric(heap/rows, "heap-bytes/row")
	b.ReportMetric(float64(accounted)/rows, "bytes/row")
}

// overlapBenchFixture builds the PR-6 multi-term workload: a 3-way union
// of 5-relation join chains that differ only in the selection on the last
// relation,
//
//	R ⋈ S ⋈ U ⋈ V ⋈ W ⋈ X ⋈ Y ⋈ Z ⋈ (σ_{x∈[0,30)}T ∪ σ_{x∈[30,60)}T ∪ σ_{x∈[60,90)}T),
//
// an 8-step join chain over a 3-way union of disjoint selections. The
// counting polynomial expands the union into 7 terms (3 singles, 3
// pairs, 1 triple) that all share the [R..Z] join prefix — CSE computes
// it once per estimate — while the disjoint x-ranges kill every cross
// term at its final probe. Sample sizes ascend R < S < … < Z < σT so
// each term plans the chain in the same order with the prefix first.
func overlapBenchFixture(b *testing.B) (*relest.Expr, *relest.Synopsis) {
	b.Helper()
	build := func(name string, n int, cols []string, row func(i int) []int64) *relest.Relation {
		specs := make([]relest.Column, len(cols))
		for i, c := range cols {
			specs[i] = relest.Col(c, relest.KindInt)
		}
		rel := relest.NewRelation(name, relest.MustSchema(specs...))
		for i := 0; i < n; i++ {
			vals := row(i)
			tup := make(relest.Tuple, len(vals))
			for j, v := range vals {
				tup[j] = relest.Int(v)
			}
			rel.MustAppend(tup)
		}
		return rel
	}
	// R⋈S fans out 30x on a; the later chain keys are near-unique so the
	// 30k prefix assignments flow flat into the T probes.
	r := build("R", 1000, []string{"a"}, func(i int) []int64 { return []int64{int64(i % 50)} })
	s := build("S", 1500, []string{"a", "c"}, func(i int) []int64 { return []int64{int64(i % 50), int64(i)} })
	u := build("U", 1600, []string{"c", "d"}, func(i int) []int64 { return []int64{int64(i), int64(i)} })
	v := build("V", 1700, []string{"d", "g"}, func(i int) []int64 { return []int64{int64(i), int64(i)} })
	w := build("W", 1800, []string{"g", "h"}, func(i int) []int64 { return []int64{int64(i), int64(i)} })
	x := build("X", 1900, []string{"h", "p"}, func(i int) []int64 { return []int64{int64(i), int64(i)} })
	y := build("Y", 2000, []string{"p", "q"}, func(i int) []int64 { return []int64{int64(i), int64(i)} })
	z := build("Z", 2100, []string{"q", "t"}, func(i int) []int64 { return []int64{int64(i), int64(i * 3 % 5000)} })
	tt := build("T", 6000, []string{"t", "x"}, func(i int) []int64 { return []int64{int64(i % 5000), int64(i % 90)} })
	syn := relest.NewSynopsis()
	rng := relest.Seeded(17)
	for _, rel := range []*relest.Relation{r, s, u, v, w, x, y, z, tt} {
		if err := syn.AddDrawn(rel, rel.Len(), rng); err != nil {
			b.Fatal(err)
		}
	}
	sel := func(lo, hi int64) *relest.Expr {
		return relest.Must(relest.Select(relest.BaseOf(tt), relest.And{
			relest.Cmp{Col: "x", Op: relest.GE, Val: relest.Int(lo)},
			relest.Cmp{Col: "x", Op: relest.LT, Val: relest.Int(hi)},
		}))
	}
	union := relest.Must(relest.Union(relest.Must(relest.Union(sel(0, 30), sel(30, 60))), sel(60, 90)))
	chain := relest.Must(relest.Join(relest.BaseOf(r), relest.BaseOf(s),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "s_"))
	for _, next := range []struct {
		rel *relest.Relation
		on  string
		pre string
	}{{u, "c", "u_"}, {v, "d", "v_"}, {w, "g", "w_"}, {x, "h", "x_"}, {y, "p", "y_"}, {z, "q", "z_"}} {
		chain = relest.Must(relest.Join(chain, relest.BaseOf(next.rel),
			[]relest.On{{Left: next.on, Right: next.on}}, nil, next.pre))
	}
	e := relest.Must(relest.Join(chain, union, []relest.On{{Left: "t", Right: "t"}}, nil, "t_"))
	return e, syn
}

// benchMultiTermOverlap runs one full COUNT estimate of the overlapping
// 3-term union per iteration.
func benchMultiTermOverlap(b *testing.B, disableCSE bool) {
	e, syn := overlapBenchFixture(b)
	opts := relest.Options{Variance: relest.VarNone, DisableCSE: disableCSE}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relest.CountWithOptions(e, syn, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiTermOverlap measures multi-term estimate throughput with
// cross-term subexpression sharing (the default); the BENCH_6 baseline is
// the same workload with -no-cse, measured identically on this host.
func BenchmarkMultiTermOverlap(b *testing.B) { benchMultiTermOverlap(b, false) }

// BenchmarkMultiTermOverlapNoCSE is the same estimate with sharing
// disabled — every term re-evaluates the common join prefix.
func BenchmarkMultiTermOverlapNoCSE(b *testing.B) { benchMultiTermOverlap(b, true) }

// streamCeilingFixture builds the streaming executor's memory fixture: a
// σ/⋈ pipeline whose probe side has rows rows against a fixed 64-row
// build side, so the pipeline's live state (operator batches + build
// side) is independent of rows.
func streamCeilingFixture(rows int) (*algebra.Expr, algebra.MapCatalog) {
	schema := func() *relest.Schema {
		return relest.MustSchema(relest.Col("a", relest.KindInt), relest.Col("b", relest.KindInt))
	}
	r := relest.NewRelation("R", schema())
	for i := 0; i < rows; i++ {
		r.MustAppend(relest.Tuple{relest.Int(int64(i % 64)), relest.Int(int64(i))})
	}
	s := relest.NewRelation("S", schema())
	for i := 0; i < 64; i++ {
		s.MustAppend(relest.Tuple{relest.Int(int64(i)), relest.Int(int64(i * 100))})
	}
	sel := algebra.Must(algebra.Select(algebra.BaseOf(r), algebra.Cmp{Col: "b", Op: algebra.GE, Val: relest.Int(0)}))
	e := algebra.Must(algebra.Join(sel, algebra.BaseOf(s), []algebra.On{{Left: "a", Right: "a"}}, nil, "s"))
	return e, algebra.MapCatalog{"R": r, "S": s}
}

// BenchmarkStreamCountCeiling runs the streaming exact count over a probe
// relation 40x the batch size (≥10x the batch working set) and reports
// the executor's peak working set next to the relation's resident bytes.
// peak-ratio-10x is the peak at 40x batches over the peak at 4x batches —
// ~1.0 is the constant-memory property (a materializing evaluator scales
// it 10x with the input).
func BenchmarkStreamCountCeiling(b *testing.B) {
	smallE, smallCat := streamCeilingFixture(4 * relation.BatchRows)
	largeE, largeCat := streamCeilingFixture(40 * relation.BatchRows)
	peak := func(e *algebra.Expr, cat algebra.MapCatalog) float64 {
		col := obs.NewCollector()
		if _, err := algebra.StreamCountOpts(e, cat, algebra.StreamOptions{Workers: 1, Rec: col}); err != nil {
			b.Fatal(err)
		}
		return col.Metrics().Gauge(obs.MetricStreamPeakBytes).Value()
	}
	small, large := peak(smallE, smallCat), peak(largeE, largeCat)
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		var err error
		n, err = algebra.StreamCount(largeE, largeCat)
		if err != nil {
			b.Fatal(err)
		}
	}
	if n == 0 {
		b.Fatal("empty join result")
	}
	b.ReportMetric(large, "peak-bytes")
	b.ReportMetric(large/small, "peak-ratio-10x")
}

// BenchmarkExactCountJoin is the cost the estimators avoid: the exact
// hash-join COUNT over the full relations.
func BenchmarkExactCountJoin(b *testing.B) {
	rng := relest.Seeded(5)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
	cat := relest.MapCatalog{"R1": r1, "R2": r2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relest.ExactCount(e, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA1Stratified(b *testing.B)   { experimentBench(b, "A1") }
func BenchmarkA2PageSampling(b *testing.B) { experimentBench(b, "A2") }

func BenchmarkA3Planner(b *testing.B) { experimentBench(b, "A3") }

// Tier benchmarks (BENCH_9.json): the same sketch-eligible equi-join
// COUNT answered by each tier of one prepared Estimator handle. The
// sketch tier reads 2·Groups·GroupSize prebuilt counters; the sample
// tier runs the counting polynomial over the n=1000-per-relation
// samples. Their ratio is the per-query win that pays for keeping the
// sketches resident.
func benchTierCount(b *testing.B, policy relest.TierPolicy) {
	b.Helper()
	rng := relest.Seeded(19)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 2_000, N1: 20_000, N2: 20_000,
		Correlation: relest.Independent,
	})
	syn, err := relest.Draw([]*relest.Relation{r1, r2}, 0.05, 20, rng)
	if err != nil {
		b.Fatal(err)
	}
	e := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
	h := relest.New(syn, relest.WithTierPolicy(policy), relest.WithPrecision(0.5))
	ctx := context.Background()
	req := relest.Request{Expr: e}
	if _, err := h.Count(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Count(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTierSketchCount(b *testing.B) { benchTierCount(b, relest.TierSketchOnly) }
func BenchmarkTierSampleCount(b *testing.B) { benchTierCount(b, relest.TierSampleOnly) }
