package relest_test

import (
	"context"
	"math"
	"testing"

	"relest"
)

// bitsEqual compares two floats by representation, distinguishing
// 0 from -0 and treating equal NaN payloads as equal — the standard the
// repo's goldens hold every worker count and recorder state to.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func requireSameEstimate(t *testing.T, label string, a, b relest.Estimate) {
	t.Helper()
	if !bitsEqual(a.Value, b.Value) || !bitsEqual(a.Variance, b.Variance) ||
		!bitsEqual(a.StdErr, b.StdErr) || !bitsEqual(a.Lo, b.Lo) || !bitsEqual(a.Hi, b.Hi) ||
		a.VarianceMethod != b.VarianceMethod || a.Terms != b.Terms {
		t.Errorf("%s: estimates differ\n  a=%+v\n  b=%+v", label, a, b)
	}
}

// TestFacadeLegacyBitIdentityMatrix pins the API redesign's compatibility
// contract: every deprecated free function is a thin wrapper over a
// TierSampleOnly Estimator handle, and its output is bit-identical to the
// handle's across the workers{1,4} × entry-point matrix. A TierAuto handle
// answering a sketch-ineligible shape must also land on those exact bits —
// escalation reuses the sample-tier computation unchanged, it does not
// approximate it.
func TestFacadeLegacyBitIdentityMatrix(t *testing.T) {
	rng := relest.Seeded(31)
	r1, r2 := relest.JoinPair(rng, relest.JoinPairSpec{
		Z1: 0.5, Z2: 0.5, Domain: 300, N1: 6_000, N2: 6_000,
		Correlation: relest.Independent,
	})
	syn, err := relest.Draw([]*relest.Relation{r1, r2}, 0.05, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	// A selection keeps every path on the sample tier even under TierAuto.
	sel := relest.Must(relest.Select(relest.BaseOf(r1),
		relest.Cmp{Col: "a", Op: relest.LT, Val: relest.Int(120)}))
	join := relest.Must(relest.Join(relest.BaseOf(r1), relest.BaseOf(r2),
		[]relest.On{{Left: "a", Right: "a"}}, nil, "R2"))
	ctx := context.Background()

	for _, workers := range []int{1, 4} {
		opts := relest.Options{Workers: workers}
		for _, c := range []struct {
			name string
			expr *relest.Expr
		}{{"selection", sel}, {"join", join}} {
			legacy, err := relest.CountWithOptions(c.expr, syn, opts)
			if err != nil {
				t.Fatal(err)
			}
			viaCtx, err := relest.CountContext(ctx, c.expr, syn, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireSameEstimate(t, c.name+"/CountContext", legacy, viaCtx)

			h := relest.New(syn, relest.WithOptions(opts), relest.WithTierPolicy(relest.TierSampleOnly))
			res, err := h.Count(ctx, relest.Request{Expr: c.expr})
			if err != nil {
				t.Fatal(err)
			}
			requireSameEstimate(t, c.name+"/sample-only handle", legacy, res.Estimate)
			if res.Tier.Answered != relest.TierAnsweredSample {
				t.Errorf("%s: sample-only handle reported tier %q", c.name, res.Tier.Answered)
			}

			// Per-request override on an auto handle: pinning the request to
			// the sample tier must reproduce the legacy bits too.
			auto := relest.New(syn, relest.WithOptions(opts))
			res, err = auto.Count(ctx, relest.Request{Expr: c.expr, Tier: relest.TierSampleOnly})
			if err != nil {
				t.Fatal(err)
			}
			requireSameEstimate(t, c.name+"/request override", legacy, res.Estimate)
		}

		// TierAuto on a sketch-ineligible shape escalates into the exact
		// same sample-tier computation.
		legacySel, err := relest.CountWithOptions(sel, syn, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := relest.New(syn, relest.WithOptions(opts)).Count(ctx, relest.Request{Expr: sel})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tier.Answered != relest.TierAnsweredSample {
			t.Fatalf("auto policy on a selection answered %q, want sample", res.Tier.Answered)
		}
		if !bitsEqual(res.Value, legacySel.Value) || !bitsEqual(res.StdErr, legacySel.StdErr) {
			t.Errorf("workers=%d: escalated selection %v±%v differs from legacy %v±%v",
				workers, res.Value, res.StdErr, legacySel.Value, legacySel.StdErr)
		}

		// Sum/Avg/GroupCount wrappers against their handle equivalents.
		sumLegacy, err := relest.SumWithOptions(sel, "id", syn, opts)
		if err != nil {
			t.Fatal(err)
		}
		sumRes, err := relest.New(syn, relest.WithOptions(opts), relest.WithTierPolicy(relest.TierSampleOnly)).
			Sum(ctx, relest.Request{Expr: sel, Col: "id"})
		if err != nil {
			t.Fatal(err)
		}
		requireSameEstimate(t, "sum", sumLegacy, sumRes.Estimate)

		avgLegacy, err := relest.Avg(sel, "id", syn, opts)
		if err != nil {
			t.Fatal(err)
		}
		avgRes, _, err := relest.New(syn, relest.WithOptions(opts), relest.WithTierPolicy(relest.TierSampleOnly)).
			Avg(ctx, relest.Request{Expr: sel, Col: "id"})
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(avgLegacy.Avg, avgRes.Avg) || !bitsEqual(avgLegacy.Sum.Value, avgRes.Sum.Value) {
			t.Errorf("avg wrapper %+v != handle %+v", avgLegacy, avgRes)
		}
	}

	groupsLegacy, err := relest.GroupCount(sel, "a", syn)
	if err != nil {
		t.Fatal(err)
	}
	groupsRes, rep, err := relest.New(syn, relest.WithTierPolicy(relest.TierSampleOnly)).
		GroupCount(ctx, relest.Request{Expr: sel, Col: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Answered != relest.TierAnsweredSample || len(groupsLegacy) != len(groupsRes) {
		t.Fatalf("group count: tier %q, %d vs %d groups", rep.Answered, len(groupsLegacy), len(groupsRes))
	}
	for i := range groupsLegacy {
		if !groupsLegacy[i].Value.Equal(groupsRes[i].Value) || !bitsEqual(groupsLegacy[i].Count, groupsRes[i].Count) {
			t.Errorf("group %d: %+v != %+v", i, groupsLegacy[i], groupsRes[i])
		}
	}

	// The loose-RNG sequential wrapper against the options-RNG context
	// variant: same seed, same bits.
	wrapped, err := relest.SequentialCount(join, syn, relest.Seeded(77), relest.SequentialOptions{TargetRelErr: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := relest.SequentialCountContext(ctx, join, syn,
		relest.SequentialOptions{TargetRelErr: 0.2, RNG: relest.Seeded(77)})
	if err != nil {
		t.Fatal(err)
	}
	requireSameEstimate(t, "sequential", wrapped.Final, viaOpts.Final)
}
