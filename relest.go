// Package relest is a Go implementation of the sampling-based statistical
// estimators for relational algebra expressions of Hou, Özsoyoğlu and
// Taneja (PODS 1988): unbiased point estimators, variance estimators and
// confidence intervals for COUNT(E) over arbitrary π-free relational
// algebra expressions E — selection, product, θ-join, union, intersection,
// difference — computed from simple random samples of the base relations,
// plus Goodman-style distinct-count estimators for projections, sequential
// (double) sampling, deadline-bounded estimation, and an incrementally
// maintained synopsis for insert/delete streams.
//
// # Quick start
//
//	r := relest.NewRelation("orders", relest.MustSchema(
//		relest.Col("customer", relest.KindInt),
//		relest.Col("amount", relest.KindInt),
//	))
//	// ... append tuples ...
//
//	syn := relest.NewSynopsis()
//	syn.AddDrawn(r, 1000, rng)                     // SRSWOR sample of 1000 rows
//	e := relest.Must(relest.Select(relest.BaseOf(r),
//		relest.Cmp{Col: "amount", Op: relest.GT, Val: relest.Int(100)}))
//	est := relest.New(syn)                         // tiered estimation handle
//	res, err := est.Count(ctx, relest.Request{Expr: e})
//	// res.Value ± res.StdErr, CI [res.Lo, res.Hi], answered by res.Tier.Answered
//
// The handle answers each counting-polynomial term from the cheapest
// synopsis tier that meets the requested precision: AGMS sketch first
// (equi-join and self-join shapes), escalating per term to the
// sample-based counting polynomial (see DESIGN.md §14).
//
// The estimators are unbiased (not just consistent): over the randomness of
// the samples, the expected value of the estimate equals COUNT(E) exactly,
// including for expressions that use the same relation several times
// (self-joins, intersections), which are handled with falling-factorial
// pattern weights. See DESIGN.md for the construction and EXPERIMENTS.md
// for the measured behaviour.
//
// This package is a facade: the implementation lives in internal packages
// (relation storage, algebra and normalization, sampling, statistics, the
// estimators, and the baseline synopses used by the benchmark suite).
package relest

import (
	"context"
	"io"
	"math/rand"
	"time"

	"relest/internal/algebra"
	"relest/internal/estimator"
	"relest/internal/obs"
	"relest/internal/planner"
	"relest/internal/relation"
	"relest/internal/sampling"
	"relest/internal/workload"
)

// Data model --------------------------------------------------------------

// Core data-model types, re-exported from the storage engine.
type (
	// Value is one typed datum (int, float, string or null).
	Value = relation.Value
	// Kind enumerates value types.
	Kind = relation.Kind
	// Column is a named, typed attribute.
	Column = relation.Column
	// Schema is an ordered list of uniquely named columns.
	Schema = relation.Schema
	// Tuple is one materialized row — the explicit escape hatch; hot paths
	// read rows in place through Row.
	Tuple = relation.Tuple
	// Row is a lightweight handle onto one stored row, read in place from
	// column storage (Relation.Row, Relation.EachRow).
	Row = relation.Row
	// Relation is an in-memory bag of tuples with a schema, stored
	// column-wise.
	Relation = relation.Relation
)

// Value kinds.
const (
	KindNull   = relation.KindNull
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
	KindString = relation.KindString
)

// Int returns an integer value.
func Int(v int64) Value { return relation.Int(v) }

// Float returns a float value.
func Float(v float64) Value { return relation.Float(v) }

// Str returns a string value.
func Str(v string) Value { return relation.Str(v) }

// Null returns the null value.
func Null() Value { return relation.Null() }

// Col builds a Column.
func Col(name string, kind Kind) Column { return Column{Name: name, Kind: kind} }

// NewSchema builds a schema, validating column names.
func NewSchema(cols ...Column) (*Schema, error) { return relation.NewSchema(cols...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(cols ...Column) *Schema { return relation.MustSchema(cols...) }

// NewRelation creates an empty relation.
func NewRelation(name string, schema *Schema) *Relation { return relation.New(name, schema) }

// ImportCSV reads a relation from CSV (header row required; nil schema
// infers column kinds).
func ImportCSV(name string, r io.Reader, schema *Schema) (*Relation, error) {
	return relation.ImportCSV(name, r, schema)
}

// ImportOptions configures ImportCSVOptions (schema, size limit).
type ImportOptions = relation.ImportOptions

// ImportCSVOptions reads a relation from CSV record-by-record with a
// configurable size limit (see relation.ImportCSVOptions).
func ImportCSVOptions(name string, r io.Reader, opts ImportOptions) (*Relation, error) {
	return relation.ImportCSVOptions(name, r, opts)
}

// ExportCSV writes a relation as CSV.
func ExportCSV(rel *Relation, w io.Writer) error { return relation.ExportCSV(rel, w) }

// Algebra -----------------------------------------------------------------

// Expression and predicate types, re-exported from the algebra layer.
type (
	// Expr is a relational algebra expression.
	Expr = algebra.Expr
	// Predicate is a boolean condition over tuples.
	Predicate = algebra.Predicate
	// Cmp compares a column with a constant.
	Cmp = algebra.Cmp
	// ColCmp compares two columns.
	ColCmp = algebra.ColCmp
	// And is a conjunction of predicates.
	And = algebra.And
	// Or is a disjunction of predicates.
	Or = algebra.Or
	// Not negates a predicate.
	Not = algebra.Not
	// FuncOnCols is an arbitrary predicate over named columns.
	FuncOnCols = algebra.FuncOnCols
	// On is one equi-join column pair.
	On = algebra.On
	// Catalog resolves relation names (the exact evaluator's input).
	Catalog = algebra.Catalog
	// MapCatalog is a map-backed Catalog.
	MapCatalog = algebra.MapCatalog
)

// Comparison operators.
const (
	EQ = algebra.EQ
	NE = algebra.NE
	LT = algebra.LT
	LE = algebra.LE
	GT = algebra.GT
	GE = algebra.GE
)

// Base creates a leaf referencing a named base relation.
func Base(name string, schema *Schema) *Expr { return algebra.Base(name, schema) }

// BaseOf creates a leaf for a stored relation.
func BaseOf(r *Relation) *Expr { return algebra.BaseOf(r) }

// Select creates σ_p(child).
func Select(child *Expr, p Predicate) (*Expr, error) { return algebra.Select(child, p) }

// Project creates π_cols(child) with duplicate elimination.
func Project(child *Expr, cols ...string) (*Expr, error) { return algebra.Project(child, cols...) }

// Product creates child × right (rightPrefix disambiguates column names).
func Product(left, right *Expr, rightPrefix string) (*Expr, error) {
	return algebra.Product(left, right, rightPrefix)
}

// Join creates an equi-join with optional residual theta predicate.
func Join(left, right *Expr, on []On, theta Predicate, rightPrefix string) (*Expr, error) {
	return algebra.Join(left, right, on, theta, rightPrefix)
}

// Union creates left ∪ right (set semantics; equal layouts required).
func Union(left, right *Expr) (*Expr, error) { return algebra.Union(left, right) }

// Intersect creates left ∩ right.
func Intersect(left, right *Expr) (*Expr, error) { return algebra.Intersect(left, right) }

// Diff creates left − right.
func Diff(left, right *Expr) (*Expr, error) { return algebra.Diff(left, right) }

// Must unwraps an (Expr, error) pair, panicking on error.
func Must(e *Expr, err error) *Expr { return algebra.Must(e, err) }

// ExactCount evaluates COUNT(e) exactly over full relations — the ground
// truth the estimators approximate.
func ExactCount(e *Expr, cat Catalog) (int64, error) { return algebra.Count(e, cat) }

// ExactEval evaluates e exactly and returns the result relation.
func ExactEval(e *Expr, cat Catalog) (*Relation, error) {
	//lint:ignore materialize the facade promises a fully materialized result the caller owns
	return algebra.Eval(e, cat)
}

// Estimation ---------------------------------------------------------------

// The estimation handle: the package's primary query surface. Build one
// with New over a synopsis, then issue requests:
//
//	est := relest.New(syn)
//	res, err := est.Count(ctx, relest.Request{Expr: e})
//	// res.Value ± res.StdErr, CI [res.Lo, res.Hi], res.Tier.Answered
//
// Requests carry a precision target, an optional deadline, and a tier
// policy (TierAuto answers from the sketch tier when it is precise
// enough, escalating per term to the sample tier; TierSampleOnly is the
// exact legacy path). The free functions below remain as deprecated thin
// wrappers over a TierSampleOnly handle, bit-identical to their
// historical outputs.
type (
	// Estimator is the unified estimation handle (Count/Sum/Avg/
	// GroupCount over one synopsis, options and tier policy).
	Estimator = estimator.Estimator
	// EstimatorOption configures New (WithOptions, WithTierPolicy,
	// WithPrecision).
	EstimatorOption = estimator.EstimatorOption
	// Request is one estimation request against a handle.
	Request = estimator.Request
	// Result is an estimate plus the tier(s) that answered it.
	Result = estimator.Result
	// TierPolicy selects which synopsis tiers a request may use.
	TierPolicy = estimator.TierPolicy
	// TierReport records which tier(s) produced an estimate.
	TierReport = estimator.TierReport
)

// Tier policies.
const (
	// TierDefault defers to the handle's configured policy.
	TierDefault = estimator.TierDefault
	// TierAuto tries the sketch tier first, escalating per term.
	TierAuto = estimator.TierAuto
	// TierSketchOnly fails on any term the sketch tier cannot answer.
	TierSketchOnly = estimator.TierSketchOnly
	// TierSampleOnly is the exact legacy counting-polynomial path.
	TierSampleOnly = estimator.TierSampleOnly
)

// DefaultPrecision is the target relative CI half-width used when neither
// the handle nor the request sets one.
const DefaultPrecision = estimator.DefaultPrecision

// Tier names reported in Result.Tier.Answered.
const (
	TierAnsweredSketch = estimator.TierAnsweredSketch
	TierAnsweredSample = estimator.TierAnsweredSample
	TierAnsweredMixed  = estimator.TierAnsweredMixed
)

// New builds an estimation handle over the synopsis. Unless constructed
// WithTierPolicy(TierSampleOnly) it also builds the synopsis's sketch
// tier (per-relation, per-column AGMS sketches and KMV distinct
// summaries; idempotent, one base-relation scan the first time).
func New(syn *Synopsis, opts ...EstimatorOption) *Estimator {
	return estimator.NewEstimator(syn, opts...)
}

// WithOptions sets the handle's evaluation options.
func WithOptions(opts Options) EstimatorOption { return estimator.WithOptions(opts) }

// WithTierPolicy sets the handle's default tier policy (TierAuto when
// unset).
func WithTierPolicy(p TierPolicy) EstimatorOption { return estimator.WithTierPolicy(p) }

// WithPrecision sets the handle's default sketch-acceptance precision
// (DefaultPrecision when unset).
func WithPrecision(w float64) EstimatorOption { return estimator.WithPrecision(w) }

// Estimation types, re-exported from the estimator core.
type (
	// Synopsis holds one uniform sample per base relation plus exact
	// cardinalities; it is the estimators' only input.
	Synopsis = estimator.Synopsis
	// Estimate is a point estimate with variance and confidence interval.
	Estimate = estimator.Estimate
	// Options configures variance method, confidence level and CI type.
	Options = estimator.Options
	// VarianceMethod selects how variance is estimated.
	VarianceMethod = estimator.VarianceMethod
	// CIMethod selects the confidence-interval construction.
	CIMethod = estimator.CIMethod
	// DistinctMethod selects the distinct-count estimator.
	DistinctMethod = estimator.DistinctMethod
	// SequentialOptions configures double sampling.
	SequentialOptions = estimator.SequentialOptions
	// SequentialResult reports a double-sampling run.
	SequentialResult = estimator.SequentialResult
	// DeadlineOptions configures deadline-bounded estimation.
	DeadlineOptions = estimator.DeadlineOptions
	// DeadlineStep is one round of a deadline run.
	DeadlineStep = estimator.DeadlineStep
	// IncrementalOptions configures an incremental synopsis.
	IncrementalOptions = estimator.IncrementalOptions
	// Incremental maintains samples over insert/delete streams.
	Incremental = estimator.Incremental
	// FreqOfFreq is the sample summary distinct estimators consume.
	FreqOfFreq = estimator.FreqOfFreq
)

// Observability, re-exported from the metrics layer. Recording is passive:
// attaching a Recorder leaves every estimate bit-identical to the
// unrecorded run (see DESIGN.md §8).
type (
	// Recorder receives counters, gauges, histograms and spans from a
	// running estimation; pass one as Options.Recorder. A nil Recorder
	// costs nothing.
	Recorder = obs.Recorder
	// Collector is the standard Recorder: lock-free metrics plus optional
	// span capture, exposable as Prometheus text or JSON via its Metrics()
	// registry and Trace().
	Collector = obs.Collector
)

// NewCollector returns a live metrics Collector to pass as
// Options.Recorder; call EnableTrace on it to also capture spans.
func NewCollector() *Collector { return obs.NewCollector() }

// Variance methods.
const (
	VarAuto        = estimator.VarAuto
	VarNone        = estimator.VarNone
	VarAnalytic    = estimator.VarAnalytic
	VarSplitSample = estimator.VarSplitSample
	VarJackknife   = estimator.VarJackknife
	// VarSketch marks an estimate answered entirely by the sketch tier.
	VarSketch = estimator.VarSketch
)

// Confidence-interval constructions.
const (
	CINormal    = estimator.CINormal
	CIChebyshev = estimator.CIChebyshev
)

// Distinct-count estimators.
const (
	DistinctGoodman   = estimator.DistinctGoodman
	DistinctScaleUp   = estimator.DistinctScaleUp
	DistinctSampleD   = estimator.DistinctSampleD
	DistinctJackknife = estimator.DistinctJackknife
	DistinctGEE       = estimator.DistinctGEE
)

// NewSynopsis creates an empty synopsis.
func NewSynopsis() *Synopsis { return estimator.NewSynopsis() }

// Draw builds a synopsis by sampling the given fraction from every
// relation (minimum minSize rows each).
func Draw(rels []*Relation, fraction float64, minSize int, rng *rand.Rand) (*Synopsis, error) {
	return estimator.Draw(rels, fraction, minSize, rng)
}

// Count estimates COUNT(e) from the synopsis with default options
// (automatic variance selection, 95% CLT confidence interval).
//
// Deprecated: use New(syn).Count with a Request; this wrapper is a
// TierSampleOnly handle call and stays bit-identical to its historical
// output (pinned by the goldens).
func Count(e *Expr, syn *Synopsis) (Estimate, error) {
	return CountWithOptions(e, syn, Options{})
}

// CountWithOptions estimates COUNT(e) with explicit options.
//
// Deprecated: use New(syn, WithOptions(opts)).Count with a Request; this
// wrapper is a TierSampleOnly handle call and stays bit-identical.
func CountWithOptions(e *Expr, syn *Synopsis, opts Options) (Estimate, error) {
	return CountContext(context.Background(), e, syn, opts)
}

// CountContext estimates COUNT(e) under a context. Cancellation is polled
// between polynomial terms and between variance replicates; a cancelled
// call returns a non-nil error and never a partial estimate.
//
// Deprecated: use New(syn, WithOptions(opts), WithTierPolicy(
// TierSampleOnly)).Count(ctx, Request{Expr: e}); this wrapper does
// exactly that and stays bit-identical.
func CountContext(ctx context.Context, e *Expr, syn *Synopsis, opts Options) (Estimate, error) {
	res, err := New(syn, WithOptions(opts), WithTierPolicy(TierSampleOnly)).Count(ctx, Request{Expr: e})
	return res.Estimate, err
}

// Sum estimates SUM(col) over the result of the π-free expression e with
// default options (the TODS 1991 aggregate extension).
//
// Deprecated: use New(syn).Sum with a Request carrying Expr and Col; this
// wrapper is a TierSampleOnly handle call and stays bit-identical.
func Sum(e *Expr, col string, syn *Synopsis) (Estimate, error) {
	return SumWithOptions(e, col, syn, Options{})
}

// SumWithOptions estimates SUM(col) with explicit options.
//
// Deprecated: use New(syn, WithOptions(opts)).Sum with a Request; this
// wrapper is a TierSampleOnly handle call and stays bit-identical.
func SumWithOptions(e *Expr, col string, syn *Synopsis, opts Options) (Estimate, error) {
	return SumContext(context.Background(), e, col, syn, opts)
}

// SumContext estimates SUM(col) under a context, with the cancellation
// contract of CountContext.
//
// Deprecated: use New(syn, WithOptions(opts), WithTierPolicy(
// TierSampleOnly)).Sum(ctx, Request{Expr: e, Col: col}); this wrapper
// does exactly that and stays bit-identical.
func SumContext(ctx context.Context, e *Expr, col string, syn *Synopsis, opts Options) (Estimate, error) {
	res, err := New(syn, WithOptions(opts), WithTierPolicy(TierSampleOnly)).Sum(ctx, Request{Expr: e, Col: col})
	return res.Estimate, err
}

// AvgResult is the ratio estimate AVG = SUM/COUNT with its components.
type AvgResult = estimator.AvgResult

// Avg estimates AVG(col) over e's result as the SUM/COUNT ratio estimator
// (consistent; biased O(1/n), as ratio estimators are).
//
// Deprecated: use New(syn, WithOptions(opts)).Avg with a Request carrying
// Expr and Col; this wrapper is a TierSampleOnly handle call and stays
// bit-identical.
func Avg(e *Expr, col string, syn *Synopsis, opts Options) (AvgResult, error) {
	res, _, err := New(syn, WithOptions(opts), WithTierPolicy(TierSampleOnly)).Avg(context.Background(), Request{Expr: e, Col: col})
	return res, err
}

// GroupEstimate is one group's estimated count from GroupCount.
type GroupEstimate = estimator.GroupEstimate

// GroupCount estimates COUNT(*) GROUP BY col over the π-free expression e,
// sorted by descending estimated count. Only groups observed in the sample
// appear; each present group's estimate is unbiased.
//
// Deprecated: use New(syn).GroupCount with a Request carrying Expr and
// Col; this wrapper is a TierSampleOnly handle call and stays
// bit-identical.
func GroupCount(e *Expr, col string, syn *Synopsis) ([]GroupEstimate, error) {
	groups, _, err := New(syn, WithTierPolicy(TierSampleOnly)).GroupCount(context.Background(), Request{Expr: e, Col: col})
	return groups, err
}

// Distinct estimates the number of distinct values of the given columns of
// a base relation (COUNT(π_cols(rel))).
func Distinct(syn *Synopsis, relName string, cols []string, method DistinctMethod) (float64, error) {
	return estimator.Distinct(syn, relName, cols, method)
}

// SequentialCount runs double sampling toward a target relative error.
//
// Deprecated: use SequentialCountContext; the RNG now travels in
// SequentialOptions (RNG, or Seed when RNG is nil), giving every
// estimation entry point the same (expr, synopsis, options) shape. This
// wrapper forwards rng through opts.RNG unchanged.
func SequentialCount(e *Expr, syn *Synopsis, rng *rand.Rand, opts SequentialOptions) (SequentialResult, error) {
	return estimator.SequentialCount(e, syn, rng, opts)
}

// SequentialCountContext runs double sampling toward a target relative
// error under a context: cancellation is polled before each phase and a
// cancelled run returns a non-nil error, never a partial result. Sample
// extensions draw from opts.RNG, or a generator seeded with opts.Seed
// when RNG is nil.
func SequentialCountContext(ctx context.Context, e *Expr, syn *Synopsis, opts SequentialOptions) (SequentialResult, error) {
	return estimator.SequentialCountContext(ctx, e, syn, opts)
}

// DeadlineCount grows samples until the time budget expires and returns
// the estimate available at the deadline.
//
// Deprecated: use DeadlineCountContext; the RNG now travels in
// DeadlineOptions (RNG, or Seed when RNG is nil). This wrapper forwards
// rng through opts.RNG unchanged.
func DeadlineCount(e *Expr, syn *Synopsis, rng *rand.Rand, opts DeadlineOptions) (Estimate, []DeadlineStep, error) {
	return estimator.DeadlineCount(e, syn, rng, opts)
}

// DeadlineCountContext grows samples until the time budget expires and
// returns the estimate available at the deadline. Budget expiry is the
// normal path (the running round completes and its estimate is returned);
// context cancellation aborts between sampling rounds with a non-nil
// error and no partial estimate. Servers map a request's deadline to
// opts.Budget and its cancellation to ctx.
func DeadlineCountContext(ctx context.Context, e *Expr, syn *Synopsis, opts DeadlineOptions) (Estimate, []DeadlineStep, error) {
	return estimator.DeadlineCountContext(ctx, e, syn, opts)
}

// NewIncremental creates an incrementally maintained synopsis with the
// given per-relation sample capacity.
//
// Deprecated: use NewIncrementalWithOptions, which takes the RNG through
// IncrementalOptions (RNG/Seed). This wrapper forwards rng unchanged.
func NewIncremental(capacity int, rng *rand.Rand) *Incremental {
	return estimator.NewIncremental(capacity, rng)
}

// NewIncrementalWithOptions creates an incrementally maintained synopsis
// from options; sampling decisions draw from opts.RNG, or a generator
// seeded with opts.Seed when RNG is nil.
func NewIncrementalWithOptions(opts IncrementalOptions) *Incremental {
	return estimator.NewIncrementalWithOptions(opts)
}

// Join-order optimization ---------------------------------------------------

// Planner types, re-exported from the optimizer built on the estimators —
// the paper's motivating application (cardinality estimation for query
// optimization).
type (
	// PlanQuery is a select-join query for the optimizer.
	PlanQuery = planner.Query
	// PlanEdge is one equi-join condition between two relations.
	PlanEdge = planner.Edge
	// Plan is an optimized left-deep join order with its estimated cost.
	Plan = planner.Plan
	// CardinalityOracle estimates the row count of a join prefix.
	CardinalityOracle = planner.CardinalityEstimator
	// CatalogOracle is the System-R AVI baseline oracle.
	CatalogOracle = planner.Catalog
)

// Optimize runs the Selinger-style dynamic program over left-deep join
// orders with the given cardinality oracle and returns the cheapest plan
// under the C_out metric (sum of intermediate result sizes).
func Optimize(q PlanQuery, oracle CardinalityOracle) (*Plan, error) {
	return planner.Optimize(q, oracle)
}

// SamplingOracle builds the paper's oracle: cardinalities estimated from a
// synopsis.
func SamplingOracle(syn *Synopsis) CardinalityOracle { return planner.Sampling{Syn: syn} }

// ExactOracle builds the ground-truth oracle over stored relations.
func ExactOracle(cat Catalog) CardinalityOracle { return planner.Exact{Cat: cat} }

// NewCatalogOracle builds the System-R baseline (exact single-table stats
// combined under the attribute-value-independence assumption) for a query.
func NewCatalogOracle(q PlanQuery, cat Catalog) (*CatalogOracle, error) {
	return planner.NewCatalog(q, cat)
}

// PlanTrueCost evaluates the actual C_out of a join order exactly — the
// score used to compare plans chosen by approximate oracles.
func PlanTrueCost(q PlanQuery, order []string, cat Catalog) (float64, error) {
	return planner.TrueCost(q, order, cat)
}

// Workloads ----------------------------------------------------------------

// Workload-generation types for experiments and demos.
type (
	// JoinPairSpec describes a correlated pair of Zipf relations.
	JoinPairSpec = workload.JoinPairSpec
	// ClusterSpec describes clustered correlated data.
	ClusterSpec = workload.ClusterSpec
	// Correlation relates the two mappings of a join pair.
	Correlation = workload.Correlation
	// Mapping controls rank→value assignment.
	Mapping = workload.Mapping
	// StreamSpec describes an insert/delete stream.
	StreamSpec = workload.StreamSpec
	// Op is one stream event.
	Op = workload.Op
)

// Correlations and mappings.
const (
	Positive    = workload.Positive
	Independent = workload.Independent
	Negative    = workload.Negative
	MapRandom   = workload.MapRandom
	MapSmooth   = workload.MapSmooth
)

// ZipfRelation generates a relation whose join attribute follows Zipf(z).
func ZipfRelation(rng *rand.Rand, name string, z float64, domain, n int, m Mapping) *Relation {
	return workload.ZipfRelation(rng, name, z, domain, n, m)
}

// JoinPair generates two correlated Zipf relations.
func JoinPair(rng *rand.Rand, spec JoinPairSpec) (*Relation, *Relation) {
	return workload.JoinPair(rng, spec)
}

// ClusteredPair generates two clustered correlated relations.
func ClusteredPair(rng *rand.Rand, spec ClusterSpec) (*Relation, *Relation) {
	return workload.ClusteredPair(rng, spec)
}

// Company generates the employees/departments demo scenario.
func Company(rng *rand.Rand, employees, departments int) (*Relation, *Relation) {
	return workload.Company(rng, employees, departments)
}

// Stream generates a well-formed insert/delete stream.
func Stream(rng *rand.Rand, spec StreamSpec) []Op { return workload.Stream(rng, spec) }

// JoinSchema returns the (a int, id int) schema the generators use.
func JoinSchema() *Schema { return workload.JoinSchema() }

// Convenience ---------------------------------------------------------------

// Seeded returns a deterministic *rand.Rand. Sampling, estimation options
// and generators all take explicit RNGs so entire runs are reproducible.
func Seeded(seed int64) *rand.Rand { return sampling.Seeded(seed) }

// Deadline is shorthand for a DeadlineOptions with the given budget.
func Deadline(budget time.Duration) DeadlineOptions { return DeadlineOptions{Budget: budget} }
