# Pre-PR gate: `make check` must pass before any change lands.
GO ?= go

.PHONY: check build vet lint test race cover bench fuzz smoke

check: build vet lint test race cover

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific invariants (determinism, RNG discipline, concurrency);
# exits nonzero on any unsuppressed finding. See internal/lint and the
# "Static analysis" section of DESIGN.md.
lint:
	$(GO) run ./cmd/relestlint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage: report every package, enforce a floor where the contract is
# "instrumentation must be fully exercised" (internal/obs) or "every
# admission/shutdown path must be driven" (internal/server). Other
# packages are report-only — their floors are the statistical tests
# themselves.
cover:
	$(GO) test -cover ./... | grep -v '\[no test files\]'
	@pct=$$($(GO) test -cover ./internal/obs | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
	awk -v p="$$pct" 'BEGIN { if (p+0 < 70) { printf "internal/obs coverage %.1f%% is below the 70%% floor\n", p; exit 1 } \
		printf "internal/obs coverage %.1f%% (floor 70%%)\n", p }'
	@pct=$$($(GO) test -cover ./internal/server | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
	awk -v p="$$pct" 'BEGIN { if (p+0 < 70) { printf "internal/server coverage %.1f%% is below the 70%% floor\n", p; exit 1 } \
		printf "internal/server coverage %.1f%% (floor 70%%)\n", p }'

# Service smoke test: build the daemon, walk the whole lifecycle against
# the real binary (start, register, estimate, scrape /metrics, SIGTERM,
# clean drain). This is the executable form of the README quick-start.
smoke:
	$(GO) test -run TestDaemonSmoke -count=1 -v ./cmd/relestd

# Short fuzzing smoke: each fuzzer runs for a few seconds on top of its
# committed seed corpus (testdata/fuzz). Crashers found locally land in
# testdata/fuzz as regression inputs.
fuzz:
	$(GO) test -run XXX -fuzz FuzzNormalize -fuzztime 3s ./internal/algebra
	$(GO) test -run XXX -fuzz FuzzPredicate -fuzztime 3s ./internal/algebra
	$(GO) test -run XXX -fuzz FuzzParse -fuzztime 3s ./internal/query

# Variance-engine benchmarks (see BENCH_1.json for recorded results).
bench:
	$(GO) test -run XXX -bench 'JackknifeVariance|SplitSampleVariance|PointEstimateJoin' -benchtime 50x .
	$(GO) test -run XXX -bench 'BenchmarkJackknife' -benchtime 5x ./internal/estimator/
