# Pre-PR gate: `make check` must pass before any change lands.
GO ?= go

.PHONY: check build vet lint lint-json lint-budget test race cover golden memgate bench bench6 bench9 bench10 fuzz smoke soak-short shard-short

check: build vet lint lint-budget test race cover golden memgate soak-short shard-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific invariants (determinism taint, view escape, context
# flow, worker purity, plus the syntactic rules); exits nonzero on any
# unsuppressed or stale-suppressed finding. See internal/lint and the
# "Static analysis" section of DESIGN.md.
lint:
	$(GO) run ./cmd/relestlint

# Same run, machine-readable: a JSON array of findings in LINT.json
# (empty array when clean). The artifact is written even when findings
# exist, but the target still fails so CI sees the gate.
lint-json:
	@$(GO) run ./cmd/relestlint -json > LINT.json; st=$$?; \
	cat LINT.json; exit $$st

# The interprocedural engine must stay cheap enough to run on every
# change: full module load + call graph + taint fixpoint + all rules
# inside the wall-clock budget asserted by TestLintRuntimeBudget.
lint-budget:
	$(GO) test -count=1 -run TestLintRuntimeBudget -v ./internal/lint | grep -v '^=== RUN\|^--- PASS'

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage: report every package, enforce a floor where the contract is
# "instrumentation must be fully exercised" (internal/obs), "every
# admission/shutdown path must be driven" (internal/server), or "every
# analyzer and the dataflow engine must be exercised by fixtures"
# (internal/lint), or "every estimator path of the sketch tier must be
# exercised" (internal/sketch). Other packages are report-only — their
# floors are the statistical tests themselves.
cover:
	$(GO) test -cover ./... | grep -v '\[no test files\]'
	@pct=$$($(GO) test -cover ./internal/obs | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
	awk -v p="$$pct" 'BEGIN { if (p+0 < 70) { printf "internal/obs coverage %.1f%% is below the 70%% floor\n", p; exit 1 } \
		printf "internal/obs coverage %.1f%% (floor 70%%)\n", p }'
	@pct=$$($(GO) test -cover ./internal/server | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
	awk -v p="$$pct" 'BEGIN { if (p+0 < 70) { printf "internal/server coverage %.1f%% is below the 70%% floor\n", p; exit 1 } \
		printf "internal/server coverage %.1f%% (floor 70%%)\n", p }'
	@pct=$$($(GO) test -cover ./internal/lint | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
	awk -v p="$$pct" 'BEGIN { if (p+0 < 70) { printf "internal/lint coverage %.1f%% is below the 70%% floor\n", p; exit 1 } \
		printf "internal/lint coverage %.1f%% (floor 70%%)\n", p }'
	@pct=$$($(GO) test -cover ./internal/sketch | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
	awk -v p="$$pct" 'BEGIN { if (p+0 < 70) { printf "internal/sketch coverage %.1f%% is below the 70%% floor\n", p; exit 1 } \
		printf "internal/sketch coverage %.1f%% (floor 70%%)\n", p }'
	@pct=$$($(GO) test -cover ./internal/cluster | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
	awk -v p="$$pct" 'BEGIN { if (p+0 < 70) { printf "internal/cluster coverage %.1f%% is below the 70%% floor\n", p; exit 1 } \
		printf "internal/cluster coverage %.1f%% (floor 70%%)\n", p }'

# Adversarial soak slice: the five workload scenarios (zipf-mix, bursty,
# hot-key eviction churn, churn-heavy streams, cancellation storm) each
# run against a live relestd while a calibration probe stream holds the
# PR-3 bias/coverage bands. Seed-pinned and bounded well under a minute;
# the full-length soak is the same test with the knobs in
# internal/server/soak_test.go raised.
soak-short:
	$(GO) test -count=1 -run TestSoakScenarios -v ./internal/server | grep -v '^=== RUN'

# Sharded-tier slice: the coordinator's scatter-gather happy path, the
# deadline-miss degradation contract (partial: true, widened CI, named
# missed shards), and byte-identical estimates across a shard rebalance.
# The full gate adds the one-shard golden byte-identity and the
# shards={1,2,4} calibration bands, which run in `make test`.
shard-short:
	$(GO) test -count=1 -run 'TestShardFanout|TestShardDeadlineMiss|TestShardRebalance' -v ./internal/cluster | grep -v '^=== RUN'

# Service smoke test: build the daemon, walk the whole lifecycle against
# the real binary (start, register, estimate, scrape /metrics, SIGTERM,
# clean drain). This is the executable form of the README quick-start.
smoke:
	$(GO) test -run TestDaemonSmoke -count=1 -v ./cmd/relestd

# Short fuzzing smoke: each fuzzer runs for a few seconds on top of its
# committed seed corpus (testdata/fuzz). Crashers found locally land in
# testdata/fuzz as regression inputs.
fuzz:
	$(GO) test -run XXX -fuzz FuzzNormalize -fuzztime 3s ./internal/algebra
	$(GO) test -run XXX -fuzz FuzzPredicate -fuzztime 3s ./internal/algebra
	$(GO) test -run XXX -fuzz FuzzParse -fuzztime 3s ./internal/query

# Golden-drift gate: the byte-identity tests must pass against the
# committed estimate fixtures, and nothing may have regenerated them —
# a drifted golden means estimates changed, which is never a side effect.
golden:
	$(GO) test -count=1 -run 'TestGoldenOutput|TestMetricsOutput|TestEstimateGoldenByteIdentity' ./cmd/relest ./internal/server
	@drift=$$(git status --porcelain -- cmd/relest/testdata internal/server/testdata); \
	if [ -n "$$drift" ]; then \
		echo "golden estimate fixtures drifted:"; echo "$$drift"; exit 1; \
	fi

# Storage-engine + variance-engine benchmarks. Emits BENCH_5.json: term-eval
# throughput, resident bytes/row, and index build time against the
# pre-columnar baselines (measured identically on this host at the row-store
# seed, immediately before the refactor). BENCH_1.json records the ISSUE 1
# evaluation-engine results.
bench:
	$(GO) test -run XXX -bench 'JackknifeVariance|SplitSampleVariance|PointEstimateJoin|BuildIndex|RelationFootprint|ExactCountJoin' -benchtime 50x . \
	| $(GO) run ./cmd/benchjson \
		-issue 5 \
		-title "Columnar storage engine with zero-copy sample views and typed join keys" \
		-command "make bench" \
		-baseline BenchmarkPointEstimateJoin=485350 \
		-baseline BenchmarkBuildIndex=4967415 \
		-baseline BenchmarkExactCountJoin=8124419 \
		-baseline-metric heap-bytes/row=103.2 \
		-note "Baselines were measured on this host at the row-store seed, with the same fixtures and methodology: BenchmarkPointEstimateJoin (one join COUNT estimate from n=1000 samples), BuildIndex over the 20k-row join fixture (then string-keyed), ExactCountJoin (full 20k x 20k hash join), and heap bytes/row from runtime.MemStats growth building the 2x20k JoinPair fixture (BenchmarkRelationFootprint repeats the measurement)." \
		-note "Acceptance targets: >=2x BenchmarkPointEstimateJoin speedup (term-eval throughput), >=3x heap-bytes/row improvement. speedup and metric_improvement are baseline/current." \
		-note "ExactCountJoin trades a little: the row-store emitted join output as shared-backing tuple appends, while the columnar engine writes each output row into four typed vectors (typed column-to-column copy, capacity pre-reserved from the match count). The estimators never materialize joins, so the hot path keeps the full win." \
		> BENCH_5.json
	cat BENCH_5.json
	$(GO) test -run XXX -bench 'BenchmarkJackknife' -benchtime 5x ./internal/estimator/
	$(MAKE) bench6

# Streaming-executor + cross-term CSE benchmarks. Emits BENCH_6.json:
# multi-term estimate throughput with subexpression sharing against the
# -no-cse baseline (measured identically on this host immediately before
# enabling CSE), and the streaming executor's heap ceiling on a probe
# relation 40x the batch size.
bench6:
	$(GO) test -run XXX -bench 'MultiTermOverlap|StreamCountCeiling' -benchtime 30x . \
	| $(GO) run ./cmd/benchjson \
		-issue 6 \
		-title "Streaming batch execution with cross-term common-subexpression elimination" \
		-command "make bench6" \
		-baseline BenchmarkMultiTermOverlap=260406435 \
		-baseline-metric peak-ratio-10x=10.0 \
		-note "BenchmarkMultiTermOverlap is one full COUNT estimate of an 8-step join chain over a 3-way union of disjoint selections (7 polynomial terms sharing one join prefix). The baseline is BenchmarkMultiTermOverlapNoCSE measured identically on this host: the same estimate with -no-cse, so speedup = no-CSE/CSE is the cross-term sharing win on a 3-term overlapping-join query. The NoCSE benchmark is included in each run so the ratio can be re-derived from current numbers." \
		-note "BenchmarkStreamCountCeiling reports peak-bytes (the streaming executor's high-water working set: operator batches + hash build side, from relest_stream_peak_bytes) on a probe relation of 40x1024 rows, and peak-ratio-10x = peak at 40x batches / peak at 4x batches. ~1.0 means the heap ceiling is independent of relation size; the 10.0 baseline is how a materializing evaluator scales over the same 10x growth, so metric_improvement ~= 10 is the constant-memory property. The regression gate is TestStreamMemoryCeiling (make memgate)." \
		> BENCH_6.json
	cat BENCH_6.json

# Tier-planner benchmarks. Emits BENCH_9.json: the same sketch-eligible
# equi-join COUNT answered by the sketch tier versus the sample-based
# counting polynomial, from one prepared Estimator handle. The baseline
# is BenchmarkTierSampleCount measured identically on this host, so
# speedup = sample/sketch is the per-query win of sketch-first
# answering; the sample benchmark is included in each run so the ratio
# can be re-derived from current numbers. Acceptance floor: >=5x.
bench9:
	$(GO) test -run XXX -bench 'TierSketchCount|TierSampleCount' -benchtime 30x . \
	| $(GO) run ./cmd/benchjson \
		-issue 9 \
		-title "Tiered hybrid synopses behind a unified Estimator facade" \
		-command "make bench9" \
		-baseline BenchmarkTierSketchCount=343027 \
		-note "Both benchmarks answer COUNT of the same equi-join (zipf 0.5 pair, domain 2000, 20k rows per relation) through relest.New handles differing only in tier policy. The sketch tier reads the prebuilt hashed-AGMS counters (9 groups x 512 buckets per column); the sample tier runs the counting polynomial over n=1000-per-relation samples. The baseline for BenchmarkTierSketchCount is BenchmarkTierSampleCount measured identically on this host, so speedup = sample-tier/sketch-tier latency; the acceptance floor is 5x." \
		> BENCH_9.json
	cat BENCH_9.json

# Sharded-tier benchmarks. Emits BENCH_10.json: the same pinned-seed
# join COUNT answered through the coordinator at shards 1, 2 and 4,
# against a stock single-node relestd measured in the same run. The
# baseline for every coordinator benchmark is BenchmarkSingleNodeEstimate
# measured identically on this host immediately before this target was
# added, so speedup = single-node/coordinator is < 1 by construction: it
# QUANTIFIES the cluster hop's overhead rather than claiming a win. The
# single-node benchmark is included in each run so the ratio can be
# re-derived from current numbers.
bench10:
	$(GO) test -run XXX -bench 'CoordEstimate|SingleNodeEstimate' -benchtime 30x ./internal/cluster \
	| $(GO) run ./cmd/benchjson \
		-issue 10 \
		-title "Sharded estimation tier: coordinator + shard-node architecture with stratified merge" \
		-command "make bench10" \
		-baseline BenchmarkCoordEstimateShards1=163745 \
		-baseline BenchmarkCoordEstimateShards2=163745 \
		-baseline BenchmarkCoordEstimateShards4=163745 \
		-note "All benchmarks answer COUNT of the same equi-join (zipf-pair, domain 200, 2000 rows per relation, 200-per-relation samples, pinned seeds) over HTTP. BenchmarkCoordEstimateShardsN runs the full coordinator path: scatter-gather fanout to N in-process shard relestds, per-shard estimation, stratified merge, JSON re-encode. The 163745 ns baseline is BenchmarkSingleNodeEstimate measured identically on this host (included in each run), so speedup = single-node/coordinator quantifies coordination overhead: about 1.8x latency at shards=1 (one extra HTTP hop plus decode/merge/re-encode) and rising with fanout width on one machine, the price of the tier being real processes speaking the real wire protocol. On a multi-node deployment the per-shard estimation cost divides by N instead of stacking on one host; the contract this tier buys is the stratified-merge statistics and the shards=1 byte-identity, not single-host latency." \
		> BENCH_10.json
	cat BENCH_10.json

# Memory-ceiling regression gate: the streaming executor's peak working
# set must stay flat when the probe relation grows 10x (see
# TestStreamMemoryCeiling and BENCH_6.json).
memgate:
	$(GO) test -count=1 -run TestStreamMemoryCeiling ./internal/algebra
