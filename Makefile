# Pre-PR gate: `make check` must pass before any change lands.
GO ?= go

.PHONY: check build vet test race bench

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Variance-engine benchmarks (see BENCH_1.json for recorded results).
bench:
	$(GO) test -run XXX -bench 'JackknifeVariance|SplitSampleVariance|PointEstimateJoin' -benchtime 50x .
	$(GO) test -run XXX -bench 'BenchmarkJackknife' -benchtime 5x ./internal/estimator/
